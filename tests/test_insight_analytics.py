"""Tests for proof-shape analytics (the paper's Section-5 quantities).

The anchor is the paper's worked example, whose analytics are small
enough to compute by hand: two derived units, each supported by two
input clauses, giving two local clauses, two estimated resolution
nodes against two proof literals (ratio 100%), and a 4-clause core of
the 5-clause formula.
"""

import math

from repro.core.formula import CnfFormula
from repro.obs import Obs, validate_analytics
from repro.obs.insight.analytics import (
    ANALYTICS_SCHEMA,
    ProofShapeAnalytics,
    analytics_document,
    analytics_footer,
    analyze_proof_shape,
    estimated_resolutions,
    is_local,
    write_analytics_json,
)
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.verify.verification import verify_proof_v1, verify_proof_v2

PAPER_F = CnfFormula([[1, 2], [1, -2], [-1, 3], [-1, -3], [4, 5]])
PAPER_PROOF = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)


def paper_analytics():
    obs = Obs.enabled(depgraph=True)
    report = verify_proof_v2(PAPER_F, PAPER_PROOF, obs=obs)
    assert report.ok
    return analyze_proof_shape(PAPER_PROOF, report, obs.depgraph), report


class TestEstimators:
    def test_estimated_resolutions(self):
        # Empty support (tautology) derives nothing; a unit support is
        # one step; k antecedents chain through k-1 resolutions.
        assert estimated_resolutions(0) == 0
        assert estimated_resolutions(1) == 1
        assert estimated_resolutions(2) == 1
        assert estimated_resolutions(5) == 4

    def test_local_threshold_matches_stats_module(self):
        # Same scale-free rule as repro.proofs.stats.analyze_log:
        # local iff estimated resolutions <= 2 * max(literals, 1).
        assert is_local(3, 1)          # 2 resolutions vs threshold 2
        assert not is_local(4, 1)      # 3 resolutions vs threshold 2
        assert is_local(9, 4)          # 8 vs 8
        assert not is_local(10, 4)     # 9 vs 8
        assert is_local(0, 0)          # tautology is trivially local


class TestPaperExampleValues:
    """Every quantity hand-computed from the worked example."""

    def test_shape(self):
        analytics, _ = paper_analytics()
        assert analytics.num_proof_clauses == 2
        assert analytics.proof_literals == 2
        assert analytics.checked == 2
        assert analytics.skipped == 0
        assert analytics.marked_fraction == 1.0
        # Each unit has a 2-clause support: 1 resolution each, local.
        assert analytics.local_clauses == 2
        assert analytics.global_clauses == 0
        assert analytics.estimated_resolution_nodes == 2
        assert analytics.max_antecedents == 2
        assert analytics.mean_antecedents == 2.0
        # 2 literals vs 2 resolution nodes: the ratio is exactly 100%.
        assert math.isclose(analytics.ratio_percent, 100.0)

    def test_core(self):
        analytics, report = paper_analytics()
        assert analytics.core_size == 4
        assert math.isclose(analytics.core_fraction, 0.8)
        assert report.core.size == 4

    def test_depths(self):
        analytics, _ = paper_analytics()
        # Both units resolve straight from F: depth 1, twice.
        assert analytics.antecedent_chain_depths == {1: 2}
        assert analytics.max_chain_depth == 1

    def test_props_histogram_populated(self):
        analytics, _ = paper_analytics()
        assert analytics.check_props  # counters were available
        assert analytics.check_props["count"] == 2


class TestV1Analytics:
    def test_no_core_and_full_marking(self):
        obs = Obs.enabled(depgraph=True)
        report = verify_proof_v1(PAPER_F, PAPER_PROOF, obs=obs)
        assert report.ok
        analytics = analyze_proof_shape(PAPER_PROOF, report,
                                        obs.depgraph)
        assert analytics.core_size is None
        assert analytics.core_fraction is None
        assert analytics.checked == 2
        # verification1's per-check evidence matches verification2's.
        assert analytics.local_clauses == 2
        assert analytics.estimated_resolution_nodes == 2


class TestDocument:
    def test_document_validates(self, tmp_path):
        analytics, _ = paper_analytics()
        doc = analytics_document(analytics, {"id": "r-test"})
        assert doc["schema"] == ANALYTICS_SCHEMA
        assert validate_analytics(doc) == []

    def test_written_artifact_validates(self, tmp_path):
        import json

        analytics, _ = paper_analytics()
        path = tmp_path / "analytics.json"
        write_analytics_json(path, analytics, {"id": "r-test"})
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert validate_analytics(doc) == []
        shape = doc["analytics"]
        assert shape["local_clauses"] == 2
        assert shape["ratio_percent"] == 100.0
        assert shape["antecedent_chain_depths"] == {"1": 2}

    def test_validator_rejects_inconsistent_split(self):
        analytics, _ = paper_analytics()
        doc = analytics_document(analytics, {"id": "r-test"})
        doc["analytics"]["global_clauses"] += 1
        assert validate_analytics(doc)

    def test_footer_lines(self):
        analytics, _ = paper_analytics()
        lines = analytics_footer(analytics)
        assert any("local=2 global=0" in line for line in lines)
        assert any("ratio=100.0%" in line for line in lines)
        assert any("core=4 clauses (80.0% of F)" in line
                   for line in lines)


class TestRatioEdgeCases:
    def test_empty_proof_shape(self):
        shape = ProofShapeAnalytics(
            num_proof_clauses=0, proof_literals=0, checked=0, skipped=0,
            marked_fraction=0.0, local_clauses=0, global_clauses=0,
            estimated_resolution_nodes=0, max_antecedents=0,
            mean_antecedents=0.0)
        assert shape.ratio_percent == 0.0
        assert shape.as_dict()["ratio_percent"] == 0.0

    def test_literals_without_nodes(self):
        shape = ProofShapeAnalytics(
            num_proof_clauses=1, proof_literals=3, checked=0, skipped=1,
            marked_fraction=0.0, local_clauses=0, global_clauses=0,
            estimated_resolution_nodes=0, max_antecedents=0,
            mean_antecedents=0.0)
        assert shape.ratio_percent == float("inf")
        assert shape.as_dict()["ratio_percent"] is None
