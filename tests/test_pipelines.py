"""Tests for the pipeline-verification substrate."""

import random

import pytest

from repro.circuits.miter import check_equivalence
from repro.core.exceptions import ModelError
from repro.pipelines.correctness import (
    pipe_instance,
    pipeline_formula,
    pipeline_miter,
    vliw_instance,
)
from repro.pipelines.impl import build_pipeline_circuit
from repro.pipelines.isa import (
    ALU_ADD,
    ALU_AND,
    ALU_OR,
    ALU_XOR,
    MachineSpec,
    execute_program,
)
from repro.pipelines.spec import build_spec_circuit
from repro.solver.cdcl import solve


def program_assignment(spec, regs, program):
    assignment = {}
    for j, value in enumerate(regs):
        for bit in range(spec.width):
            assignment[f"r{j}[{bit}]"] = bool((value >> bit) & 1)
    for i, (op, s1, s2, d) in enumerate(program):
        for bit in range(2):
            assignment[f"op{i}[{bit}]"] = bool((op >> bit) & 1)
        for bit in range(spec.reg_bits):
            assignment[f"s1_{i}[{bit}]"] = bool((s1 >> bit) & 1)
            assignment[f"s2_{i}[{bit}]"] = bool((s2 >> bit) & 1)
            assignment[f"d{i}[{bit}]"] = bool((d >> bit) & 1)
    return assignment


def read_regs(spec, outputs):
    return [sum(outputs[f"out_r{j}[{bit}]"] << bit
                for bit in range(spec.width))
            for j in range(spec.num_regs)]


class TestReferenceSemantics:
    def test_single_add(self):
        spec = MachineSpec(num_instrs=1, num_regs=4, width=4)
        regs = execute_program(spec, [1, 2, 0, 0],
                               [(ALU_ADD, 0, 1, 2)])
        assert regs == [1, 2, 3, 0]

    def test_ops(self):
        spec = MachineSpec(num_instrs=1, num_regs=4, width=4)
        assert execute_program(spec, [12, 10, 0, 0],
                               [(ALU_AND, 0, 1, 0)])[0] == 8
        assert execute_program(spec, [12, 10, 0, 0],
                               [(ALU_OR, 0, 1, 0)])[0] == 14
        assert execute_program(spec, [12, 10, 0, 0],
                               [(ALU_XOR, 0, 1, 0)])[0] == 6

    def test_add_wraps(self):
        spec = MachineSpec(num_instrs=1, num_regs=2, width=2)
        assert execute_program(spec, [3, 1],
                               [(ALU_ADD, 0, 1, 0)])[0] == 0

    def test_vliw_reads_pre_bundle_state(self):
        spec = MachineSpec(num_instrs=2, num_regs=2, width=2,
                           issue_width=2)
        # Both instructions read r0 before either write lands.
        regs = execute_program(
            spec, [1, 0],
            [(ALU_ADD, 0, 0, 0),   # r0 = 1+1 = 2
             (ALU_ADD, 0, 0, 1)])  # r1 = 1+1 = 2 (pre-bundle r0!)
        assert regs == [2, 2]

    def test_vliw_write_order(self):
        spec = MachineSpec(num_instrs=2, num_regs=2, width=2,
                           issue_width=2)
        regs = execute_program(
            spec, [1, 2],
            [(ALU_ADD, 0, 1, 0),   # r0 = 3
             (ALU_XOR, 0, 1, 0)])  # r0 = 1^2 = 3 (later wins)
        assert regs == [3, 2]

    def test_validation(self):
        with pytest.raises(ModelError):
            MachineSpec(num_instrs=0)
        with pytest.raises(ModelError):
            MachineSpec(num_instrs=1, num_regs=3)
        with pytest.raises(ModelError):
            MachineSpec(num_instrs=1, width=0)


@pytest.mark.parametrize("issue_width", [1, 2])
@pytest.mark.parametrize("depth", [1, 2, 3])
class TestCircuitsMatchReference:
    def test_random_programs(self, issue_width, depth):
        spec = MachineSpec(num_instrs=4, num_regs=4, width=2,
                           issue_width=issue_width)
        spec_circuit = build_spec_circuit(spec)
        impl_circuit = build_pipeline_circuit(spec, depth)
        rng = random.Random(depth * 10 + issue_width)
        for _ in range(25):
            regs = [rng.randrange(4) for _ in range(4)]
            program = [(rng.randrange(4), rng.randrange(4),
                        rng.randrange(4), rng.randrange(4))
                       for _ in range(4)]
            expected = execute_program(spec, regs, program)
            assignment = program_assignment(spec, regs, program)
            for circuit in (spec_circuit, impl_circuit):
                out = circuit.output_values(assignment)
                assert read_regs(spec, out) == expected


class TestCorrespondence:
    def test_small_pipe_unsat(self):
        formula = pipe_instance(2, 3, num_regs=2, width=1)
        assert solve(formula).is_unsat

    def test_small_vliw_unsat(self):
        formula = vliw_instance(2, 4, num_regs=2, width=1)
        assert solve(formula).is_unsat

    def test_equivalence_api(self):
        spec = MachineSpec(num_instrs=3, num_regs=2, width=1)
        equivalent, _ = check_equivalence(
            build_spec_circuit(spec), build_pipeline_circuit(spec, 2))
        assert equivalent

    def test_pipeline_without_forwarding_caught(self):
        """A pipeline that reads stale registers without forwarding is
        wrong, and the miter exposes it — the bug class these formulas
        exist to catch."""
        from repro.circuits.netlist import Circuit
        from repro.pipelines.isa import (
            add_program_inputs,
            add_regfile_inputs,
            alu_result,
            fields_equal_const,
            select_register,
        )

        spec = MachineSpec(num_instrs=3, num_regs=2, width=1)
        depth = 2

        def broken_pipeline():
            c = Circuit("no_forwarding")
            program = add_program_inputs(c, spec)
            initial = add_regfile_inputs(c, spec)
            results = []
            for i in range(spec.num_instrs):
                cutoff = max(0, i - depth)  # writebacks only
                operands = []
                for source in ("s1", "s2"):
                    per_register = []
                    for j in range(spec.num_regs):
                        value = initial[j]
                        for writer in range(cutoff):
                            hit = fields_equal_const(
                                c, program[writer]["d"], j)
                            value = [c.MUX(hit, value[b],
                                           results[writer][b])
                                     for b in range(spec.width)]
                        per_register.append(value)
                    operands.append(select_register(
                        c, program[i][source], per_register))
                # BUG: in-flight results are never forwarded.
                results.append(alu_result(c, program[i]["op"],
                                          operands[0], operands[1]))
            for j in range(spec.num_regs):
                value = initial[j]
                for writer in range(spec.num_instrs):
                    hit = fields_equal_const(c, program[writer]["d"], j)
                    value = [c.MUX(hit, value[b], results[writer][b])
                             for b in range(spec.width)]
                for b in range(spec.width):
                    c.set_output(c.BUF(value[b], name=f"out_r{j}[{b}]"))
            return c

        equivalent, counterexample = check_equivalence(
            build_spec_circuit(spec), broken_pipeline())
        assert not equivalent
        assert counterexample is not None

    def test_depth_validated(self):
        spec = MachineSpec(num_instrs=2)
        with pytest.raises(ModelError):
            build_pipeline_circuit(spec, 0)

    def test_miter_builds(self):
        spec = MachineSpec(num_instrs=2, num_regs=2, width=1)
        miter = pipeline_miter(spec, 2)
        assert miter.outputs == ["miter"]

    def test_formula_has_expected_shape(self):
        spec = MachineSpec(num_instrs=2, num_regs=2, width=1)
        formula = pipeline_formula(spec, 2)
        assert formula.num_clauses > 50
        assert formula.num_vars > 20
