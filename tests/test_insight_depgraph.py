"""Tests for the proof dependency-graph recorder and artifact.

The graph is the paper's Section-4 marking machinery made visible:
every checked clause's conflict-analysis support, exported as a
schema-versioned JSONL artifact.  The pinned guarantees: the paper's
worked example produces exactly the hand-derivable graph, the artifact
round-trips, validates, and — after :func:`depgraph_deterministic_view`
— is identical across ``jobs=1`` and ``jobs=4`` in rebuild mode.
"""

import random

import pytest

from repro.core.formula import CnfFormula
from repro.obs import Obs, validate_depgraph
from repro.obs.insight.depgraph import (
    DEPGRAPH_SCHEMA,
    DepGraphRecorder,
    depgraph_deterministic_view,
    depgraph_header,
    depgraph_records,
    depgraph_to_dot,
    read_depgraph_jsonl,
    write_depgraph_jsonl,
)
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.verification import verify_proof_v1, verify_proof_v2


# The paper's running example (Section 2): F has a refutation through
# the derived units (1) and (-1); clause (4 5) is padding.
PAPER_F = CnfFormula([[1, 2], [1, -2], [-1, 3], [-1, -3], [4, 5]])
PAPER_PROOF = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)


def random_unsat_instance(seed: int = 7, min_proof: int = 6):
    rng = random.Random(seed)
    while True:
        clauses = [[rng.choice([1, -1]) * v
                    for v in rng.sample(range(1, 13), 3)]
                   for _ in range(50)]
        formula = CnfFormula(clauses)
        result = solve(formula)
        if result.is_unsat:
            proof = ConflictClauseProof.from_log(result.log)
            if len(proof) >= min_proof:
                return formula, proof


class TestRecorder:
    def test_record_check_normalizes_antecedents(self):
        recorder = DepGraphRecorder()
        recorder.record_check(0, 7, [5, 3, 5, 7], confl=3, props=12)
        (record,) = recorder.checks
        # Sorted, deduplicated, and the checked clause itself excluded.
        assert record["antecedents"] == [3, 5]
        assert record["confl"] == 3
        assert record["props"] == 12

    def test_totals(self):
        recorder = DepGraphRecorder()
        recorder.record_check(0, 5, [0, 1])
        recorder.record_check(1, 6, [2, 3, 5])
        assert recorder.num_checks == 2
        assert recorder.num_edges == 5

    def test_merge_is_order_independent(self):
        records = [{"type": "check", "index": i, "cid": 10 + i,
                    "antecedents": [i], "confl": i, "props": None}
                   for i in range(6)]
        forward, shuffled = DepGraphRecorder(), DepGraphRecorder()
        forward.merge(records)
        mixed = list(records)
        random.Random(3).shuffle(mixed)
        shuffled.merge(mixed[:3])
        shuffled.merge(mixed[3:])
        assert forward.sorted_checks() == shuffled.sorted_checks()


class TestPaperExample:
    """Hand-derivable graph of the paper's worked example.

    Checking (1) falsifies it; BCP over {(1 2), (1 -2)} conflicts, so
    both are responsible.  Checking (-1) under marked (1): BCP over
    {(-1 3), (-1 -3)} conflicts.  Clause (4 5) supports nothing.
    """

    def run(self):
        obs = Obs.enabled(depgraph=True)
        report = verify_proof_v2(PAPER_F, PAPER_PROOF, obs=obs)
        assert report.ok
        return obs.depgraph.sorted_checks()

    def test_exact_antecedents(self):
        first, second = self.run()
        assert first["index"] == 0 and first["cid"] == 5
        assert first["antecedents"] == [0, 1]
        assert second["index"] == 1 and second["cid"] == 6
        assert second["antecedents"] == [2, 3]

    def test_padding_clause_never_referenced(self):
        referenced = set()
        for record in self.run():
            referenced.update(record["antecedents"])
        assert 4 not in referenced  # (4 5) is not in any support


class TestArtifact:
    def make_lines(self, tmp_path):
        obs = Obs.enabled(depgraph=True)
        report = verify_proof_v2(PAPER_F, PAPER_PROOF, obs=obs)
        assert report.ok
        path = tmp_path / "dep.jsonl"
        lines = write_depgraph_jsonl(
            path, obs.depgraph, {"id": "r-test"},
            num_input=PAPER_F.num_clauses, num_proof=len(PAPER_PROOF),
            procedure="verification2", mode="rebuild")
        return path, lines

    def test_round_trip(self, tmp_path):
        path, lines = self.make_lines(tmp_path)
        assert read_depgraph_jsonl(path) == lines
        header = lines[0]
        assert header["schema"] == DEPGRAPH_SCHEMA
        assert header["meta"]["num_input"] == 5
        assert header["meta"]["num_proof"] == 2

    def test_validates(self, tmp_path):
        _, lines = self.make_lines(tmp_path)
        assert validate_depgraph(lines) == []

    def test_validator_rejects_cid_mismatch(self, tmp_path):
        _, lines = self.make_lines(tmp_path)
        lines[1]["cid"] += 1  # breaks cid == num_input + index
        assert any("cid" in problem
                   for problem in validate_depgraph(lines))

    def test_validator_rejects_forward_edge(self, tmp_path):
        _, lines = self.make_lines(tmp_path)
        lines[1]["antecedents"] = [lines[1]["cid"] + 1]
        assert validate_depgraph(lines)

    def test_deterministic_view_strips_volatile_fields(self, tmp_path):
        _, lines = self.make_lines(tmp_path)
        view = depgraph_deterministic_view(lines)
        assert "jobs" not in view["meta"]
        assert all("props" not in record for record in view["checks"])
        assert [record["antecedents"] for record in view["checks"]] \
            == [[0, 1], [2, 3]]

    def test_dot_output(self, tmp_path):
        _, lines = self.make_lines(tmp_path)
        dot = depgraph_to_dot(lines)
        assert dot.startswith("digraph depgraph {")
        assert 'c0 [shape=box, label="F[0]"];' in dot
        assert 'p0 [shape=ellipse, label="F*[0]"];' in dot
        assert "c0 -> p0;" in dot
        assert "p0 -> p1;" not in dot  # (-1)'s support is F-only

    def test_dot_truncation(self, tmp_path):
        _, lines = self.make_lines(tmp_path)
        dot = depgraph_to_dot(lines, max_nodes=2)
        assert "truncated" in dot

    def test_records_normalizer_accepts_all_shapes(self, tmp_path):
        obs = Obs.enabled(depgraph=True)
        verify_proof_v2(PAPER_F, PAPER_PROOF, obs=obs)
        from_recorder = depgraph_records(obs.depgraph)
        path, lines = self.make_lines(tmp_path)
        assert depgraph_records(lines) == from_recorder
        assert depgraph_records(from_recorder) == from_recorder


class TestShardingIndependence:
    """The acceptance guarantee: identical artifact for any --jobs."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_rebuild_view_identical_across_jobs(self, jobs):
        formula, proof = random_unsat_instance()
        views = []
        for job_count in (1, jobs):
            obs = Obs.enabled(depgraph=True)
            report = verify_proof_v1(formula, proof, mode="rebuild",
                                     jobs=job_count, obs=obs)
            assert report.ok
            header = depgraph_header(
                {"id": f"r-{job_count}"},
                num_input=formula.num_clauses, num_proof=len(proof),
                procedure="verification1", mode="rebuild",
                jobs=job_count)
            views.append(depgraph_deterministic_view(
                [header] + obs.depgraph.sorted_checks()))
        assert views[0] == views[1]

    def test_capture_selects_history_free_engine(self):
        from repro.bcp.counting import CountingPropagator
        from repro.bcp.watched import WatchedPropagator
        from repro.verify.verification import _resolve_engine_cls

        capture = Obs.enabled(depgraph=True)
        plain = Obs.enabled()
        assert _resolve_engine_cls(None, capture) is CountingPropagator
        assert _resolve_engine_cls(None, plain) is WatchedPropagator
        assert _resolve_engine_cls(None, None) is WatchedPropagator
        # An explicit engine always wins over the capture default.
        assert _resolve_engine_cls(WatchedPropagator, capture) \
            is WatchedPropagator

    def test_v1_and_v2_supports_agree_on_checked_clauses(self):
        formula, proof = random_unsat_instance()
        v1, v2 = Obs.enabled(depgraph=True), Obs.enabled(depgraph=True)
        assert verify_proof_v1(formula, proof, mode="rebuild",
                               obs=v1).ok
        assert verify_proof_v2(formula, proof, mode="rebuild",
                               obs=v2).ok
        by_index = {record["index"]: record["antecedents"]
                    for record in v1.depgraph.sorted_checks()}
        for record in v2.depgraph.sorted_checks():
            assert by_index[record["index"]] == record["antecedents"]
