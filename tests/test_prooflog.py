"""Unit tests for ProofLog and ProofStep."""

import pytest

from repro.proofs.log import ProofLog, ProofStep


class TestProofStep:
    def test_resolution_count(self):
        step = ProofStep((1, 2), (0, 1, 2), (3, 4))
        assert step.resolution_count == 2

    def test_copy_step(self):
        step = ProofStep((1,), (0,), ())
        assert step.resolution_count == 0


class TestProofLog:
    def test_add_step_returns_ref(self):
        log = ProofLog(input_clauses=[(1, 2), (-1,)])
        ref = log.add_step((2,), (0, 1), (1,))
        assert ref == 2
        assert log.num_deduced == 1

    def test_chain_arity_checked(self):
        log = ProofLog()
        with pytest.raises(ValueError):
            log.add_step((1,), (0, 1), ())

    def test_literals_of_input(self):
        log = ProofLog(input_clauses=[(1, 2)])
        assert log.literals_of(0) == (1, 2)

    def test_literals_of_step(self):
        log = ProofLog(input_clauses=[(1, 2)])
        ref = log.add_step((5,), (0,), ())
        assert log.literals_of(ref) == (5,)

    def test_completion(self):
        log = ProofLog()
        assert not log.is_complete()
        log.ending = "empty"
        assert log.is_complete()

    def test_counts(self):
        log = ProofLog(input_clauses=[(1,), (-1, 2)])
        log.add_step((2,), (0, 1), (1,))
        log.add_step((), (2, 0), (2,))
        assert log.num_input == 2
        assert log.deduced_literal_count() == 1
        assert log.resolution_node_count() == 2
