"""Tests for resolution-graph reconstruction from conflict clause proofs."""

import random

import pytest

from repro.benchgen.php import pigeonhole
from repro.benchgen.xor_chains import parity_contradiction
from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.reconstruct import reconstruct_resolution_graph

from tests.conftest import random_formula


def proof_of(formula, **kwargs):
    result = solve(formula, **kwargs)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


class TestReconstruction:
    def test_handwritten_proof(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        result = reconstruct_resolution_graph(formula, proof)
        check = result.graph.check()
        assert check.ok, check.error
        assert result.graph.node_count > 0

    def test_solver_proof_php(self):
        formula = pigeonhole(4)
        result = reconstruct_resolution_graph(formula, proof_of(formula))
        assert result.graph.check().ok

    def test_parity_proof(self):
        formula = parity_contradiction(8)
        result = reconstruct_resolution_graph(formula, proof_of(formula))
        assert result.graph.check().ok

    def test_empty_ended_proof(self):
        formula = CnfFormula([[1], [-1, 2], [-2]])
        proof = ConflictClauseProof([()], ENDING_EMPTY)
        result = reconstruct_resolution_graph(formula, proof)
        assert result.graph.check().ok

    def test_derived_clauses_subsume(self):
        formula = pigeonhole(3)
        proof = proof_of(formula)
        result = reconstruct_resolution_graph(formula, proof)
        for index, derived in result.derived_clauses.items():
            assert derived <= frozenset(proof[index])

    def test_strengthening_example(self):
        # Proof clause (1, 3) where BCP derives the stronger (1): the
        # graph node carries (1) and the sink still reaches empty.
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1, 3), (1,), (-1,), ],
                                    ENDING_FINAL_PAIR)
        result = reconstruct_resolution_graph(formula, proof)
        assert result.graph.check().ok

    def test_incorrect_proof_rejected(self):
        sat_formula = CnfFormula([[1, 2, 3]])
        bogus = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        with pytest.raises(ReproError):
            reconstruct_resolution_graph(sat_formula, bogus)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_proofs_reconstruct(self, seed):
        rng = random.Random(700 + seed)
        reconstructed = 0
        for _ in range(20):
            formula = random_formula(rng, 8, 35)
            solved = solve(formula)
            if not solved.is_unsat:
                continue
            proof = ConflictClauseProof.from_log(solved.log)
            result = reconstruct_resolution_graph(formula, proof)
            check = result.graph.check()
            assert check.ok, (check.error, formula.clauses)
            reconstructed += 1
        assert reconstructed > 2

    @pytest.mark.parametrize("learning", ["1uip", "decision", "adaptive"])
    def test_all_schemes(self, learning):
        formula = pigeonhole(4)
        proof = proof_of(formula, learning=learning)
        result = reconstruct_resolution_graph(formula, proof)
        assert result.graph.check().ok
