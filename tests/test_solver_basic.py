"""Unit tests for the CDCL solver: basic behaviors and options."""

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.formula import CnfFormula
from repro.solver.cdcl import CdclSolver, SolverOptions, solve
from repro.solver.result import SAT, UNKNOWN, UNSAT


class TestSmallFormulas:
    def test_trivial_sat(self):
        result = solve(CnfFormula([[1]]))
        assert result.status == SAT
        assert result.model[1] is True

    def test_trivial_unsat(self):
        result = solve(CnfFormula([[1], [-1]]))
        assert result.status == UNSAT

    def test_empty_formula_sat(self):
        result = solve(CnfFormula(num_vars=3))
        assert result.is_sat
        assert set(result.model) == {1, 2, 3}

    def test_empty_clause_unsat(self):
        result = solve(CnfFormula([[1, 2], []]))
        assert result.is_unsat

    def test_all_combinations_unsat(self, tiny_unsat):
        result = solve(tiny_unsat)
        assert result.is_unsat

    def test_model_satisfies(self, tiny_sat):
        result = solve(tiny_sat)
        assert result.is_sat
        assert tiny_sat.is_satisfied_by(result.model)

    def test_unit_conflict(self, unit_conflict):
        result = solve(unit_conflict)
        assert result.is_unsat

    def test_model_covers_all_declared_vars(self):
        formula = CnfFormula([[1]], num_vars=5)
        result = solve(formula)
        assert set(result.model) == {1, 2, 3, 4, 5}

    def test_pigeonhole_unsat(self):
        result = solve(pigeonhole(4))
        assert result.is_unsat
        assert result.stats.conflicts > 0


class TestProofLogging:
    def test_log_present_by_default(self, tiny_unsat):
        result = solve(tiny_unsat)
        assert result.log is not None
        assert result.log.is_complete()
        assert result.log.steps[-1].literals == ()

    def test_log_disabled(self, tiny_unsat):
        result = solve(tiny_unsat, log_proof=False)
        assert result.is_unsat
        assert result.log is None

    def test_sat_log_incomplete(self, tiny_sat):
        result = solve(tiny_sat)
        assert not result.log.is_complete()

    def test_unit_then_empty_tail(self, tiny_unsat):
        steps = solve(tiny_unsat).log.steps
        assert len(steps) >= 2
        assert len(steps[-2].literals) == 1
        assert steps[-1].literals == ()

    def test_input_clauses_captured(self, tiny_unsat):
        log = solve(tiny_unsat).log
        assert log.num_input == tiny_unsat.num_clauses
        assert log.input_clauses[0] == tiny_unsat[0].literals


class TestOptions:
    def test_bad_learning_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(learning="2uip")

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(engine="magic")

    def test_bad_hybrid_period_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(hybrid_period=0)

    def test_bad_heuristic_rejected(self, tiny_sat):
        with pytest.raises(ValueError):
            solve(tiny_sat, heuristic="random")

    def test_bad_restart_rejected(self, tiny_sat):
        with pytest.raises(ValueError):
            solve(tiny_sat, restart="sometimes")

    def test_options_and_kwargs_exclusive(self, tiny_sat):
        with pytest.raises(ValueError):
            solve(tiny_sat, SolverOptions(), learning="1uip")

    def test_conflict_budget(self):
        result = solve(pigeonhole(7), max_conflicts=5)
        assert result.status == UNKNOWN
        assert result.stats.conflicts == 5

    @pytest.mark.parametrize("learning", ["1uip", "decision", "hybrid"])
    @pytest.mark.parametrize("heuristic", ["vsids", "berkmin"])
    def test_all_configs_solve_php(self, learning, heuristic):
        result = solve(pigeonhole(4), learning=learning,
                       heuristic=heuristic)
        assert result.is_unsat

    @pytest.mark.parametrize("restart", ["luby", "geometric", "none"])
    def test_restart_policies(self, restart):
        result = solve(pigeonhole(4), restart=restart, restart_base=10)
        assert result.is_unsat

    def test_counting_engine(self):
        result = solve(pigeonhole(4), engine="counting")
        assert result.is_unsat

    def test_counting_engine_disables_deletion(self):
        solver = CdclSolver(pigeonhole(4),
                            SolverOptions(engine="counting",
                                          enable_deletion=True))
        assert not solver.deletion_enabled


class TestStats:
    def test_stats_populated(self):
        result = solve(pigeonhole(5))
        stats = result.stats
        assert stats.conflicts > 0
        assert stats.decisions > 0
        assert stats.propagations > 0
        # The terminal level-0 conflict is counted but analyzed by the
        # final analysis, not by clause learning.
        assert stats.learned_clauses == stats.conflicts - 1
        assert stats.solve_time > 0

    def test_deletion_happens_under_pressure(self):
        result = solve(pigeonhole(6), restart_base=10, reduce_base=30,
                       reduce_growth=10)
        assert result.is_unsat
        assert result.stats.deleted_clauses > 0

    def test_deleted_clauses_still_in_proof(self):
        result = solve(pigeonhole(6), restart_base=10, reduce_base=30,
                       reduce_growth=10)
        # F* records every deduced clause, even deleted ones.
        assert result.log.num_deduced == result.stats.conflicts + 1


class TestHeuristicIntegration:
    def test_berkmin_order_instantiated(self):
        from repro.solver.heuristics import BerkMinOrder, VsidsOrder

        solver = CdclSolver(pigeonhole(3),
                            SolverOptions(heuristic="berkmin"))
        assert isinstance(solver.order, BerkMinOrder)
        solver = CdclSolver(pigeonhole(3),
                            SolverOptions(heuristic="vsids"))
        assert isinstance(solver.order, VsidsOrder)

    def test_berkmin_stack_tracks_learned(self):
        from repro.solver.heuristics import BerkMinOrder

        solver = CdclSolver(pigeonhole(4),
                            SolverOptions(heuristic="berkmin"))
        solver.solve()
        assert isinstance(solver.order, BerkMinOrder)
        assert len(solver.order.learned_stack) \
            == solver.stats.learned_clauses

    def test_max_decision_level_recorded(self):
        result = solve(pigeonhole(5))
        assert result.stats.max_decision_level >= 2

    def test_restarts_fire_with_small_base(self):
        result = solve(pigeonhole(6), restart="geometric",
                       restart_base=5)
        assert result.is_unsat
        assert result.stats.restarts > 0

    def test_no_restarts_policy(self):
        result = solve(pigeonhole(4), restart="none")
        assert result.is_unsat
        assert result.stats.restarts == 0
