"""Tests for transition systems and BMC unrolling."""

import pytest

from repro.bmc.transition import TransitionSystem
from repro.bmc.unroll import unroll
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError
from repro.solver.cdcl import solve


def toggle_system(bad_at_one=False):
    """One-bit toggler; optionally flags bad when the bit is 1."""
    c = Circuit("toggle_step")
    s = c.add_input("s")
    c.set_output(c.NOT(s, name="next_s"))
    if bad_at_one:
        c.set_output(c.BUF(s, name="bad"))
    else:
        c.set_output(c.CONST0(name="bad"))
    return TransitionSystem("toggle", c, ["s"], init={"s": False})


class TestValidation:
    def test_missing_next_output(self):
        c = Circuit()
        c.add_input("s")
        c.set_output(c.CONST0(name="bad"))
        with pytest.raises(ModelError, match="next_s"):
            TransitionSystem("broken", c, ["s"])

    def test_missing_bad_output(self):
        c = Circuit()
        s = c.add_input("s")
        c.set_output(c.BUF(s, name="next_s"))
        with pytest.raises(ModelError, match="bad"):
            TransitionSystem("broken", c, ["s"])

    def test_input_mismatch(self):
        c = Circuit()
        s = c.add_input("s")
        c.add_input("extra")
        c.set_output(c.BUF(s, name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        with pytest.raises(ModelError, match="do not match"):
            TransitionSystem("broken", c, ["s"])

    def test_init_unknown_var(self):
        c = Circuit()
        s = c.add_input("s")
        c.set_output(c.BUF(s, name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        with pytest.raises(ModelError, match="unknown state"):
            TransitionSystem("broken", c, ["s"], init={"zz": True})

    def test_init_circuit_non_state_inputs(self):
        c = Circuit()
        s = c.add_input("s")
        c.set_output(c.BUF(s, name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        bad_init = Circuit()
        bad_init.add_input("notstate")
        bad_init.set_output(bad_init.BUF("notstate", name="ok"))
        with pytest.raises(ModelError, match="non-state"):
            TransitionSystem("broken", c, ["s"], init_circuit=bad_init)


class TestSimulation:
    def test_toggle_trace(self):
        ts = toggle_system()
        trace, bads = ts.run({"s": False}, [{}] * 4)
        assert [frame["s"] for frame in trace] == [False, True, False,
                                                   True, False]
        assert bads == [False] * 4

    def test_bad_flag(self):
        ts = toggle_system(bad_at_one=True)
        _, bads = ts.run({"s": False}, [{}] * 3)
        assert bads == [False, True, False]

    def test_init_contradiction_rejected(self):
        ts = toggle_system()
        with pytest.raises(ModelError, match="contradicts"):
            ts.run({"s": True}, [])

    def test_missing_input_rejected(self):
        c = Circuit()
        s = c.add_input("s")
        c.add_input("go")
        c.set_output(c.MUX("go", s, c.NOT(s), name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        ts = TransitionSystem("gated", c, ["s"], ["go"],
                              init={"s": False})
        with pytest.raises(ModelError, match="missing input"):
            ts.run({"s": False}, [{}])


class TestUnroll:
    def test_safe_system_unsat(self):
        instance = unroll(toggle_system(), 5)
        assert solve(instance.formula).is_unsat

    def test_buggy_system_sat(self):
        instance = unroll(toggle_system(bad_at_one=True), 3)
        assert solve(instance.formula).is_sat

    def test_bound_one_reaches_nothing(self):
        # bad fires only when s is 1; from s=0, one step evaluates bad
        # at frame 0 where s=0 — UNSAT.
        instance = unroll(toggle_system(bad_at_one=True), 1)
        assert solve(instance.formula).is_unsat

    def test_bound_validation(self):
        with pytest.raises(ModelError):
            unroll(toggle_system(), 0)

    def test_frames_exposed(self):
        instance = unroll(toggle_system(), 3)
        assert len(instance.state_literals) == 4
        assert len(instance.bad_literals) == 3
        assert len(instance.input_literals) == 3

    def test_without_bad_assertion_sat(self):
        instance = unroll(toggle_system(), 3, assert_bad=False)
        assert solve(instance.formula).is_sat

    def test_init_circuit_constrains_frame0(self):
        c = Circuit()
        s = c.add_input("s")
        t = c.add_input("t")
        c.set_output(c.BUF(s, name="next_s"))
        c.set_output(c.BUF(t, name="next_t"))
        # bad when s == t: with init s != t (via circuit), UNSAT.
        c.set_output(c.XNOR(s, t, name="bad"))
        init = Circuit()
        init.add_input("s")
        init.add_input("t")
        init.set_output(init.add_gate("XOR", ("s", "t"), name="ok"))
        ts = TransitionSystem("pair", c, ["s", "t"], init_circuit=init)
        assert solve(unroll(ts, 4).formula).is_unsat
