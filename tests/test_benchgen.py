"""Tests for benchmark generators and the instance registry."""

import pytest

from repro.benchgen.php import pigeonhole
from repro.benchgen.random_unsat import random_ksat, random_unsat
from repro.benchgen.registry import (
    INSTANCES,
    TABLE1_INSTANCES,
    TABLE2_INSTANCES,
    TABLE3_INSTANCES,
    build_instance,
    instance_names,
)
from repro.benchgen.xor_chains import parity_contradiction
from repro.core.exceptions import ModelError
from repro.solver.cdcl import solve
from repro.solver.dpll import dpll_solve


class TestPigeonhole:
    def test_counts(self):
        formula = pigeonhole(3)
        assert formula.num_vars == 12
        # 4 pigeon clauses + 3 holes * C(4,2) pair clauses.
        assert formula.num_clauses == 4 + 3 * 6

    @pytest.mark.parametrize("holes", [1, 2, 3, 4])
    def test_unsat(self, holes):
        assert solve(pigeonhole(holes)).is_unsat

    def test_validation(self):
        with pytest.raises(ModelError):
            pigeonhole(0)

    def test_dropping_a_pigeon_makes_it_sat(self):
        formula = pigeonhole(3)
        from repro.core.formula import CnfFormula
        weakened = CnfFormula(list(formula)[1:],
                              num_vars=formula.num_vars)
        assert solve(weakened).is_sat


class TestParityContradiction:
    @pytest.mark.parametrize("width", [2, 3, 8, 15])
    def test_unsat(self, width):
        assert solve(parity_contradiction(width)).is_unsat

    def test_validation(self):
        with pytest.raises(ModelError):
            parity_contradiction(1)

    def test_relaxed_is_sat(self):
        """Dropping one of the two final units leaves it satisfiable."""
        formula = parity_contradiction(5)
        from repro.core.formula import CnfFormula
        relaxed = CnfFormula(list(formula)[:-1],
                             num_vars=formula.num_vars)
        assert solve(relaxed).is_sat


class TestRandom:
    def test_ksat_shape(self):
        formula = random_ksat(10, 30, k=3, seed=1)
        assert formula.num_clauses == 30
        assert all(len(c) == 3 for c in formula)
        assert formula.num_vars == 10

    def test_ksat_deterministic(self):
        a = random_ksat(10, 30, seed=5)
        b = random_ksat(10, 30, seed=5)
        assert [c.literals for c in a] == [c.literals for c in b]

    def test_k_bounds_checked(self):
        with pytest.raises(ModelError):
            random_ksat(2, 5, k=3)

    def test_random_unsat_certified(self):
        formula = random_unsat(num_vars=12, ratio=6.0, seed=3)
        assert dpll_solve(formula).is_unsat


class TestRegistry:
    def test_table_lists_are_registered(self):
        for name in (TABLE1_INSTANCES + TABLE2_INSTANCES
                     + TABLE3_INSTANCES):
            assert name in INSTANCES

    def test_unknown_instance(self):
        with pytest.raises(KeyError, match="unknown instance"):
            build_instance("frobnicator")

    def test_family_filter(self):
        assert set(instance_names("fifo")) == {"fifo8_6", "fifo8_8",
                                               "fifo8_10"}
        assert len(instance_names()) == len(INSTANCES)

    def test_specs_have_descriptions(self):
        for spec in INSTANCES.values():
            assert spec.description
            assert spec.family
            assert spec.paper_analog

    @pytest.mark.parametrize("name", ["eq_alu4", "barrel5", "stack8_8",
                                      "w6_10", "php6", "parity24",
                                      "eq_rot8"])
    def test_fast_instances_unsat(self, name):
        """Every instance must be UNSAT; checked here for the fast ones
        (the full set is exercised by the benchmark harness)."""
        formula = build_instance(name)
        result = solve(formula)
        assert result.is_unsat, name

    def test_builders_are_deterministic(self):
        a = build_instance("eq_add8")
        b = build_instance("eq_add8")
        assert [c.literals for c in a] == [c.literals for c in b]
