"""Chunked, resumable DRUP trace reading (:mod:`repro.proofs.stream`).

The stream reader is a differential twin of :func:`read_drup`: over any
well-formed trace, at any chunk size, it must yield the same events —
plus byte-exact resume offsets and typed errors for torn or rotten
files (the operational faults :mod:`repro.testing.faults` injects at
process level).
"""

import pytest

from repro.core.exceptions import ProofFormatError
from repro.proofs.drup import ADD, DELETE, format_drup, read_drup
from repro.proofs.stream import (
    DrupStreamReader,
    iter_drup_file,
    read_drup_chunked,
)

TRACE = """\
c a comment line
1 2 0
c deletions interleave with additions

d 1 2 0
-3 0
d -3 0
5 -6 7 0
0
"""


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.drup"
    path.write_text(TRACE)
    return path


class TestEquivalence:
    @pytest.mark.parametrize("chunk_bytes", [1, 2, 3, 7, 64, 1 << 16])
    def test_matches_read_drup(self, trace_path, chunk_bytes):
        whole = read_drup(trace_path)
        chunked = read_drup_chunked(trace_path,
                                    chunk_bytes=chunk_bytes)
        assert list(chunked.events) == list(whole.events)

    @pytest.mark.parametrize("chunk_bytes", [1, 5, 4096])
    def test_roundtrip_formatted_trace(self, tmp_path, chunk_bytes):
        path = tmp_path / "rt.drup"
        path.write_text(TRACE)
        proof = read_drup(path)
        path.write_text(format_drup(proof))
        again = read_drup_chunked(path, chunk_bytes=chunk_bytes)
        assert list(again.events) == list(proof.events)

    def test_event_kinds_and_indices(self, trace_path):
        events = list(iter_drup_file(trace_path))
        assert [s.index for s in events] == list(range(6))
        assert [s.event.kind for s in events] == [
            ADD, DELETE, ADD, DELETE, ADD, ADD]
        assert events[-1].event.literals == ()

    def test_no_trailing_newline(self, tmp_path):
        path = tmp_path / "bare.drup"
        path.write_text("1 0\n0")
        events = [s.event for s in iter_drup_file(path)]
        assert [e.literals for e in events] == [(1,), ()]


class TestResume:
    def test_offsets_reproduce_every_suffix(self, trace_path):
        events = list(iter_drup_file(trace_path, chunk_bytes=4))
        for cut in range(len(events)):
            at = events[cut]
            suffix = list(iter_drup_file(
                trace_path, start_offset=at.offset,
                start_line=at.line_number + 1,
                start_index=at.index + 1, chunk_bytes=4))
            assert [(s.index, s.event) for s in suffix] \
                == [(s.index, s.event) for s in events[cut + 1:]]

    def test_offset_points_past_the_line(self, trace_path):
        data = trace_path.read_bytes()
        for streamed in iter_drup_file(trace_path):
            prefix = data[:streamed.offset]
            assert prefix.endswith(b"\n") or streamed.offset == len(
                data)


class TestTornFiles:
    def test_truncated_final_clause(self, tmp_path):
        path = tmp_path / "torn.drup"
        path.write_text("1 2 0\n-3 ")
        with pytest.raises(ProofFormatError,
                           match="truncated trace"):
            list(iter_drup_file(path))

    def test_missing_zero_midfile_names_its_line(self, tmp_path):
        path = tmp_path / "bad.drup"
        path.write_text("1 2 0\n3 4\n5 0\n")
        with pytest.raises(ProofFormatError, match="line 2"):
            list(iter_drup_file(path))

    def test_undecodable_bytes(self, tmp_path):
        path = tmp_path / "rot.drup"
        path.write_bytes(b"1 2 0\n\xff\xfe 0\n")
        with pytest.raises(ProofFormatError, match="undecodable"):
            list(iter_drup_file(path))

    @pytest.mark.parametrize("chunk_bytes", [1, 3, 1 << 16])
    def test_errors_independent_of_chunking(self, tmp_path,
                                            chunk_bytes):
        path = tmp_path / "torn.drup"
        path.write_text("1 0\nd 1")
        with pytest.raises(ProofFormatError):
            list(iter_drup_file(path, chunk_bytes=chunk_bytes))

    def test_reader_is_reiterable(self, trace_path):
        reader = DrupStreamReader(trace_path, chunk_bytes=8)
        first = [s.event for s in reader]
        second = [s.event for s in reader]
        assert first == second
