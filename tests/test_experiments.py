"""Tests for the experiment harness (table builders)."""

import pytest

from repro.experiments.runner import (
    ExperimentRow,
    berkmin_options,
    run_instance,
    run_instances,
)
from repro.experiments.table1 import format_table1
from repro.experiments.table2 import format_table2
from repro.experiments.table3 import format_table3


@pytest.fixture(scope="module")
def sample_rows():
    return run_instances(["eq_alu4", "stack8_8"])


class TestRunner:
    def test_row_fields(self, sample_rows):
        row = sample_rows[0]
        assert row.name == "eq_alu4"
        assert row.paper_analog == "c2670"
        assert row.num_conflict_clauses > 0
        assert 0 < row.tested_fraction <= 1
        assert 0 < row.core_fraction <= 1
        assert row.resolution_nodes > 0
        assert row.conflict_literals > 0
        assert row.solve_time > 0
        assert row.verification_time > 0

    def test_ratio(self, sample_rows):
        row = sample_rows[0]
        expected = 100.0 * row.conflict_literals / row.resolution_nodes
        assert row.ratio_percent == pytest.approx(expected)

    def test_cache(self):
        first = run_instance("eq_alu4")
        second = run_instance("eq_alu4")
        assert first is second

    def test_cache_bypass(self):
        first = run_instance("eq_alu4")
        fresh = run_instance("eq_alu4", use_cache=False)
        assert fresh is not first
        assert fresh.num_clauses == first.num_clauses

    def test_berkmin_options(self):
        options = berkmin_options()
        assert options.learning == "adaptive"
        assert options.heuristic == "berkmin"
        overridden = berkmin_options(heuristic="vsids")
        assert overridden.heuristic == "vsids"


class TestFormatting:
    def test_table1_contains_rows(self, sample_rows):
        text = format_table1(sample_rows)
        assert "Table 1" in text
        assert "eq_alu4" in text
        assert "c2670" in text

    def test_table2_contains_summary(self, sample_rows):
        text = format_table2(sample_rows)
        assert "Table 2" in text
        assert "smaller on" in text

    def test_table3_trend_line(self, sample_rows):
        text = format_table3(sample_rows)
        assert "Table 3" in text
        assert "ratio trend" in text

    def test_synthetic_rows(self):
        row = ExperimentRow(
            name="x", paper_analog="y", num_vars=1, num_clauses=2,
            solve_time=0.1, conflicts=3, num_conflict_clauses=4,
            tested_fraction=0.5, core_size=1, core_fraction=0.5,
            verification_time=0.2, resolution_nodes=200,
            conflict_literals=100)
        assert row.ratio_percent == 50.0
        for formatter in (format_table1, format_table2, format_table3):
            assert "x" in formatter([row])

    def test_zero_nodes_ratio(self):
        row = ExperimentRow(
            name="x", paper_analog="-", num_vars=1, num_clauses=1,
            solve_time=0, conflicts=0, num_conflict_clauses=1,
            tested_fraction=1, core_size=1, core_fraction=1,
            verification_time=0, resolution_nodes=0,
            conflict_literals=0)
        assert row.ratio_percent == 0.0


class TestInventory:
    def test_format_inventory(self):
        from repro.experiments.instances import format_inventory

        text = format_inventory(["eq_alu4", "php6"])
        assert "eq_alu4" in text
        assert "c2670" in text
        assert "php" in text

    def test_metadata_only(self):
        from repro.experiments.instances import format_inventory

        text = format_inventory(["eq_alu4"], build=False)
        assert "-" in text

    def test_cli_family_filter(self, capsys):
        from repro.experiments.instances import main

        main(["--family", "fifo", "--skip-build"])
        out = capsys.readouterr().out
        assert "fifo8_6" in out
        assert "eq_alu4" not in out


class TestReport:
    def test_build_report_structure(self):
        from repro.experiments.report import build_report

        text = build_report(["eq_alu4"], ["eq_alu4"])
        assert "# Measured results" in text
        assert "## Table 1" in text
        assert "## Table 2" in text
        assert "## Table 3" in text
        assert "eq_alu4" in text
        assert "c2670" in text

    def test_report_cli_writes_file(self, tmp_path, capsys):
        from repro.experiments import report as report_module

        out_path = tmp_path / "r.md"
        report_module.main(["--quick", "--output", str(out_path)])
        assert out_path.exists()
        assert "Table 1" in out_path.read_text()
