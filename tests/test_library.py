"""Functional tests for the circuit library (vs Python arithmetic)."""

import random

import pytest

from repro.circuits.library import (
    alu,
    barrel_rotator,
    carry_select_adder,
    decoded_rotator,
    equality_and_of_xnor,
    equality_nor_of_xor,
    mux_tree_selector,
    onehot_selector,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    shift_add_multiplier,
    wallace_multiplier,
)
from repro.core.exceptions import CircuitError


def put_bus(assignment, name, value, width):
    for i in range(width):
        assignment[f"{name}[{i}]"] = bool((value >> i) & 1)


def get_bus(values, name, width):
    return sum(values[f"{name}[{i}]"] << i for i in range(width))


@pytest.mark.parametrize("builder", [ripple_carry_adder,
                                     carry_select_adder])
class TestAdders:
    def test_exhaustive_3bit(self, builder):
        circuit = builder(3)
        for a in range(8):
            for b in range(8):
                for cin in range(2):
                    assignment = {"cin": bool(cin)}
                    put_bus(assignment, "a", a, 3)
                    put_bus(assignment, "b", b, 3)
                    out = circuit.output_values(assignment)
                    total = get_bus(out, "s", 3) + (out["cout"] << 3)
                    assert total == a + b + cin

    def test_random_8bit(self, builder):
        circuit = builder(8)
        rng = random.Random(1)
        for _ in range(50):
            a, b, cin = rng.randrange(256), rng.randrange(256), \
                rng.randrange(2)
            assignment = {"cin": bool(cin)}
            put_bus(assignment, "a", a, 8)
            put_bus(assignment, "b", b, 8)
            out = circuit.output_values(assignment)
            assert get_bus(out, "s", 8) + (out["cout"] << 8) == a + b + cin


@pytest.mark.parametrize("builder", [shift_add_multiplier,
                                     wallace_multiplier])
class TestMultipliers:
    def test_exhaustive_3bit(self, builder):
        circuit = builder(3)
        for a in range(8):
            for b in range(8):
                assignment = {}
                put_bus(assignment, "a", a, 3)
                put_bus(assignment, "b", b, 3)
                out = circuit.output_values(assignment)
                assert get_bus(out, "p", 6) == a * b

    def test_random_5bit(self, builder):
        circuit = builder(5)
        rng = random.Random(2)
        for _ in range(40):
            a, b = rng.randrange(32), rng.randrange(32)
            assignment = {}
            put_bus(assignment, "a", a, 5)
            put_bus(assignment, "b", b, 5)
            out = circuit.output_values(assignment)
            assert get_bus(out, "p", 10) == a * b


@pytest.mark.parametrize("builder", [barrel_rotator, decoded_rotator])
class TestRotators:
    def test_exhaustive_8bit(self, builder):
        circuit = builder(8)
        for data in (0b00000001, 0b10110010, 0b11111111, 0):
            for shift in range(8):
                assignment = {}
                put_bus(assignment, "d", data, 8)
                put_bus(assignment, "sh", shift, 3)
                out = circuit.output_values(assignment)
                expected = ((data << shift) | (data >> (8 - shift))) & 0xFF
                assert get_bus(out, "q", 8) == expected

    def test_power_of_two_required(self, builder):
        with pytest.raises(CircuitError):
            builder(6)


@pytest.mark.parametrize("builder", [parity_chain, parity_tree])
class TestParity:
    def test_random(self, builder):
        circuit = builder(9)
        rng = random.Random(3)
        for _ in range(30):
            value = rng.randrange(512)
            assignment = {}
            put_bus(assignment, "x", value, 9)
            out = circuit.output_values(assignment)
            assert out["p"] == bool(bin(value).count("1") & 1)

    def test_too_small(self, builder):
        with pytest.raises(CircuitError):
            builder(1)


@pytest.mark.parametrize("builder", [equality_and_of_xnor,
                                     equality_nor_of_xor])
class TestEquality:
    def test_exhaustive_3bit(self, builder):
        circuit = builder(3)
        for a in range(8):
            for b in range(8):
                assignment = {}
                put_bus(assignment, "a", a, 3)
                put_bus(assignment, "b", b, 3)
                out = circuit.output_values(assignment)
                assert out["eq"] == (a == b)


class TestAlu:
    @pytest.mark.parametrize("adder", ["ripple", "select"])
    def test_all_ops_exhaustive(self, adder):
        circuit = alu(3, adder)
        for a in range(8):
            for b in range(8):
                for op, fn in enumerate([
                        lambda x, y: (x + y) & 7,
                        lambda x, y: x & y,
                        lambda x, y: x | y,
                        lambda x, y: x ^ y]):
                    assignment = {}
                    put_bus(assignment, "a", a, 3)
                    put_bus(assignment, "b", b, 3)
                    put_bus(assignment, "op", op, 2)
                    out = circuit.output_values(assignment)
                    assert get_bus(out, "y", 3) == fn(a, b), (a, b, op)

    def test_unknown_adder(self):
        with pytest.raises(CircuitError):
            alu(3, "magic")


@pytest.mark.parametrize("builder", [mux_tree_selector, onehot_selector])
class TestSelectors:
    def test_exhaustive_8way(self, builder):
        circuit = builder(8)
        rng = random.Random(4)
        for _ in range(20):
            data = rng.randrange(256)
            for index in range(8):
                assignment = {}
                put_bus(assignment, "d", data, 8)
                put_bus(assignment, "sh", index, 3)
                out = circuit.output_values(assignment)
                assert out["q"] == bool((data >> index) & 1)
