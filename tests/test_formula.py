"""Unit tests for CnfFormula."""

import pytest
from hypothesis import given

from repro.core.clause import Clause
from repro.core.formula import CnfFormula

from tests.conftest import cnf_formulas


class TestConstruction:
    def test_empty(self):
        f = CnfFormula()
        assert f.num_vars == 0
        assert f.num_clauses == 0

    def test_from_literal_lists(self):
        f = CnfFormula([[1, -2], [3]])
        assert f.num_clauses == 2
        assert f.num_vars == 3
        assert f[0] == Clause([1, -2])

    def test_from_clause_objects(self):
        f = CnfFormula([Clause([5])])
        assert f.num_vars == 5

    def test_declared_vars_kept(self):
        f = CnfFormula([[1]], num_vars=10)
        assert f.num_vars == 10

    def test_declare_vars_never_lowers(self):
        f = CnfFormula([[7]])
        f.declare_vars(3)
        assert f.num_vars == 7

    def test_add_clause_returns_clause(self):
        f = CnfFormula()
        returned = f.add_clause([2, 1])
        assert returned == Clause([1, 2])

    def test_duplicates_allowed(self):
        f = CnfFormula([[1], [1]])
        assert f.num_clauses == 2

    def test_extend(self):
        f = CnfFormula()
        f.extend([[1], [2, -1]])
        assert f.num_clauses == 2


class TestEvaluation:
    def test_satisfied(self):
        f = CnfFormula([[1, 2], [-1]])
        assert f.evaluate({1: False, 2: True}) is True
        assert f.is_satisfied_by({1: False, 2: True})

    def test_falsified(self):
        f = CnfFormula([[1], [-1]])
        assert f.evaluate({1: True}) is False

    def test_undetermined(self):
        f = CnfFormula([[1, 2]])
        assert f.evaluate({1: False}) is None

    def test_empty_formula_true(self):
        assert CnfFormula().evaluate({}) is True

    @given(cnf_formulas(max_vars=6, max_clauses=10))
    def test_all_true_assignment(self, f):
        assignment = {var: True for var in range(1, f.num_vars + 1)}
        value = f.evaluate(assignment)
        expected = all(any(lit > 0 for lit in c) for c in f)
        assert value is expected


class TestAccessors:
    def test_literal_count(self):
        f = CnfFormula([[1, 2], [3], []])
        assert f.literal_count() == 3

    def test_iteration_order(self):
        f = CnfFormula([[1], [2], [3]])
        assert [c.literals for c in f] == [(1,), (2,), (3,)]

    def test_len_getitem(self):
        f = CnfFormula([[1], [2]])
        assert len(f) == 2
        assert f[1] == Clause([2])

    def test_copy_independent(self):
        f = CnfFormula([[1]])
        g = f.copy()
        g.add_clause([2])
        assert f.num_clauses == 1
        assert g.num_clauses == 2
        assert f.num_vars == 1
        assert g.num_vars == 2

    def test_repr(self):
        assert "num_vars=3" in repr(CnfFormula([[3]]))

    def test_invalid_literal_propagates(self):
        with pytest.raises(ValueError):
            CnfFormula([[0]])
