"""Tests for proof trimming (the Section 4 corollary)."""

import random

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.trimming import trim_proof
from repro.verify.verification import verify_proof_v1, verify_proof_v2

from tests.conftest import random_formula


def proof_of(formula, **kwargs):
    result = solve(formula, **kwargs)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


class TestTrim:
    def test_junk_clause_removed(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1, 5), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        result = trim_proof(formula, proof)
        assert result.clauses_removed == 1
        assert result.literals_removed == 2
        assert result.trimmed.clauses == [(1,), (-1,)]

    def test_trimmed_proof_verifies_both_ways(self):
        formula = pigeonhole(4)
        result = trim_proof(formula, proof_of(formula))
        assert verify_proof_v1(formula, result.trimmed).ok
        assert verify_proof_v2(formula, result.trimmed).ok

    def test_trim_is_idempotent(self):
        formula = pigeonhole(4)
        once = trim_proof(formula, proof_of(formula))
        twice = trim_proof(formula, once.trimmed)
        # A second pass may shave a little more (different conflicts),
        # but never grows the proof.
        assert len(twice.trimmed) <= len(once.trimmed)

    def test_order_preserved(self):
        formula = pigeonhole(3)
        proof = proof_of(formula)
        result = trim_proof(formula, proof)
        assert list(result.kept_indices) == sorted(result.kept_indices)
        positions = [proof.clauses.index(c, 0)
                     for c in result.trimmed.clauses[:3]]
        assert positions == sorted(positions)

    def test_incorrect_proof_rejected(self):
        sat_formula = CnfFormula([[1, 2, 3]])
        bogus = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        with pytest.raises(ReproError):
            trim_proof(sat_formula, bogus)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_trims_verify(self, seed):
        rng = random.Random(900 + seed)
        unsat_seen = 0
        for _ in range(20):
            formula = random_formula(rng, 8, 35)
            result = solve(formula)
            if not result.is_unsat:
                continue
            unsat_seen += 1
            proof = ConflictClauseProof.from_log(result.log)
            trim = trim_proof(formula, proof)
            assert verify_proof_v2(formula, trim.trimmed).ok
            assert len(trim.trimmed) <= len(proof)
        assert unsat_seen > 0

    def test_real_instance_actually_shrinks(self):
        formula = pigeonhole(5)
        proof = proof_of(formula, restart_base=10)
        trim = trim_proof(formula, proof)
        assert trim.clauses_removed > 0
        assert verify_proof_v2(formula, trim.trimmed).ok
