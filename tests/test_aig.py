"""Tests for the AIG subsystem."""

import random

import pytest

from repro.aig.aig import FALSE_LIT, TRUE_LIT, Aig
from repro.aig.cnf import AigCnf
from repro.aig.convert import circuit_to_aig
from repro.aig.equivalence import (
    aig_equivalence_formula,
    build_aig_miter,
    structurally_equivalent,
)
from repro.circuits.library import (
    carry_select_adder,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import solve
from repro.verify.verification import verify_proof_v2


class TestAigBasics:
    def test_constant_folds(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.AND(a, FALSE_LIT) == FALSE_LIT
        assert aig.AND(a, TRUE_LIT) == a
        assert aig.AND(a, a) == a
        assert aig.AND(a, a ^ 1) == FALSE_LIT
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        first = aig.AND(a, b)
        second = aig.AND(b, a)  # commuted
        assert first == second
        assert aig.num_ands == 1

    def test_not_is_free(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.NOT(aig.NOT(a)) == a
        assert aig.num_ands == 0

    def test_inputs_frozen_after_ands(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.AND(a, b)
        with pytest.raises(CircuitError):
            aig.add_input("c")

    def test_duplicate_input_rejected(self):
        aig = Aig()
        aig.add_input("a")
        with pytest.raises(CircuitError):
            aig.add_input("a")

    def test_simulate_gate_semantics(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.set_output("and", aig.AND(a, b))
        aig.set_output("or", aig.OR(a, b))
        aig.set_output("xor", aig.XOR(a, b))
        aig.set_output("mux", aig.MUX(a, b, b ^ 1))
        for x in (False, True):
            for y in (False, True):
                out = aig.simulate({"a": x, "b": y})
                assert out["and"] == (x and y)
                assert out["or"] == (x or y)
                assert out["xor"] == (x != y)
                assert out["mux"] == ((not y) if x else y)

    def test_cone(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        used = aig.AND(a, b)
        aig.AND(a ^ 1, b)  # dead node
        cone = aig.cone([used])
        assert used >> 1 in cone
        assert len(cone) == 3  # two inputs + one AND


class TestCircuitConversion:
    @pytest.mark.parametrize("builder", [
        lambda: ripple_carry_adder(4),
        lambda: wallace_multiplier(3),
        lambda: parity_tree(7),
    ])
    def test_semantics_preserved(self, builder):
        circuit = builder()
        aig = circuit_to_aig(circuit)
        rng = random.Random(1)
        for _ in range(60):
            assignment = {net: rng.random() < 0.5
                          for net in circuit.inputs}
            want = {net: circuit.simulate(assignment)[net]
                    for net in circuit.outputs}
            assert aig.simulate(assignment) == want

    def test_hashing_shrinks(self):
        # Two instantiations of the same logic share every node.
        circuit = ripple_carry_adder(4)
        single = circuit_to_aig(circuit).num_ands
        aig, _ = build_aig_miter(circuit, ripple_carry_adder(4))
        # miter adds XOR/OR glue only — far less than doubling.
        assert aig.num_ands < 2 * single


class TestAigCnf:
    def test_cnf_agrees_with_simulation(self):
        circuit = ripple_carry_adder(3)
        aig = circuit_to_aig(circuit)
        encoding = AigCnf(aig)
        rng = random.Random(2)
        for _ in range(15):
            assignment = {net: rng.random() < 0.5
                          for net in circuit.inputs}
            probe = encoding.formula.copy()
            for net in circuit.inputs:
                lit = encoding.input_literal(net)
                probe.add_clause([lit if assignment[net] else -lit])
            result = solve(probe, log_proof=False)
            assert result.is_sat
            values = aig.simulate(assignment)
            for net, aig_lit in aig.outputs.items():
                dimacs = encoding.literal_of(aig_lit)
                value = (result.model[abs(dimacs)] if dimacs > 0
                         else not result.model[abs(dimacs)])
                assert value == values[net]

    def test_cone_restriction(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        live = aig.AND(a, b)
        aig.AND(a ^ 1, b ^ 1)  # dead
        encoding = AigCnf(aig, roots=[live])
        # Only the live AND is encoded: 3 clauses, 3 vars.
        assert encoding.formula.num_clauses == 3

    def test_assert_constant_false_gives_empty_clause(self):
        aig = Aig()
        aig.add_input("a")
        encoding = AigCnf(aig, roots=[])
        encoding.assert_true(FALSE_LIT)
        assert solve(encoding.formula).is_unsat


class TestAigEquivalence:
    def test_identical_circuits_collapse(self):
        assert structurally_equivalent(ripple_carry_adder(4),
                                       ripple_carry_adder(4))

    def test_different_structures_need_sat(self):
        left, right = parity_chain(8), parity_tree(8)
        # (chain and tree hash differently, so SAT does the rest)
        formula = aig_equivalence_formula(left, right)
        result = solve(formula)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok

    def test_adder_pair(self):
        formula = aig_equivalence_formula(ripple_carry_adder(6),
                                          carry_select_adder(6))
        assert solve(formula).is_unsat

    def test_hashing_wins_on_shared_logic(self):
        """When the two sides share most structure (a circuit vs its
        lightly rewritten self), hashing collapses the shared part and
        the AIG miter is far smaller than the plain Tseitin miter."""
        from repro.circuits.miter import equivalence_formula
        from repro.circuits.rewrite import rewrite_circuit
        left = wallace_multiplier(4)
        right = rewrite_circuit(left)
        plain = equivalence_formula(left, right)
        hashed = aig_equivalence_formula(left, right)
        assert hashed.num_clauses < plain.num_clauses
        result = solve(hashed)
        assert result.is_unsat

    def test_inequivalent_pair_sat(self):
        left = parity_chain(4)
        right = Circuit("not_parity")
        xs = right.add_input_bus("x", 4)
        right.set_output(right.AND(*xs, name="p"))
        formula = aig_equivalence_formula(left, right)
        assert solve(formula).is_sat

    def test_input_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            build_aig_miter(parity_chain(4), parity_chain(5))


class TestVariadicHelpers:
    def test_and_many_empty_is_true(self):
        aig = Aig()
        assert aig.and_many([]) == TRUE_LIT

    def test_or_many_empty_is_false(self):
        aig = Aig()
        assert aig.or_many([]) == FALSE_LIT

    def test_and_many_chains(self):
        aig = Aig()
        lits = [aig.add_input(f"x{i}") for i in range(4)]
        out = aig.set_output("y", aig.and_many(lits))
        values = aig.simulate({f"x{i}": True for i in range(4)})
        assert values["y"] is True
        values = aig.simulate({"x0": True, "x1": True, "x2": False,
                               "x3": True})
        assert values["y"] is False

    def test_duplicate_output_rejected(self):
        aig = Aig()
        a = aig.add_input("a")
        aig.set_output("y", a)
        with pytest.raises(CircuitError):
            aig.set_output("y", a ^ 1)

    def test_missing_input_value(self):
        aig = Aig()
        aig.add_input("a")
        with pytest.raises(CircuitError, match="missing value"):
            aig.simulate({})

    def test_repr(self):
        aig = Aig("t")
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.set_output("y", aig.AND(a, b))
        assert "ands=1" in repr(aig)
