"""Unit tests for the branching heuristics."""

import pytest

from repro.bcp.watched import WatchedPropagator
from repro.core.literals import encode
from repro.solver.heuristics import BerkMinOrder, VsidsOrder, make_order


def engine_with(num_vars, clauses=()):
    engine = WatchedPropagator(num_vars)
    for clause in clauses:
        engine.add_clause([encode(lit) for lit in clause])
    return engine


class TestVsids:
    def test_pick_highest_activity(self):
        order = VsidsOrder(3)
        engine = engine_with(3)
        order.bump(2)
        assert order.pick(engine) == 2

    def test_pick_skips_assigned(self):
        order = VsidsOrder(3)
        engine = engine_with(3)
        order.bump(2)
        order.bump(2)
        order.bump(1)
        engine.assume(encode(2))
        assert order.pick(engine) == 1

    def test_all_assigned_returns_none(self):
        order = VsidsOrder(2)
        engine = engine_with(2)
        engine.assume(encode(1))
        engine.enqueue(encode(2), None)
        assert order.pick(engine) is None

    def test_push_after_unassign(self):
        order = VsidsOrder(2)
        engine = engine_with(2)
        order.bump(1)
        engine.assume(encode(1))
        assert order.pick(engine) == 2
        engine.backtrack(0)
        order.push(1)
        assert order.pick(engine) == 1

    def test_decay_amplifies_recent_bumps(self):
        order = VsidsOrder(2, decay=0.5)
        order.bump(1)          # activity 1
        order.decay_step()     # future bumps worth 2
        order.bump(2)          # activity 2
        assert order.activity[2] > order.activity[1]

    def test_rescale_preserves_order(self):
        order = VsidsOrder(3, decay=0.5)
        order.bump(3)
        # Force a rescale by massive decay inflation.
        for _ in range(400):
            order.decay_step()
        order.bump(2)  # triggers rescale (activity > 1e100)
        engine = engine_with(3)
        assert order.pick(engine) == 2
        assert all(a <= 1e100 for a in order.activity)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            VsidsOrder(1, decay=0.0)
        with pytest.raises(ValueError):
            VsidsOrder(1, decay=1.5)

    def test_ensure_vars_grows(self):
        order = VsidsOrder(0)
        order.ensure_vars(5)
        assert len(order.activity) == 6
        engine = engine_with(5)
        assert order.pick(engine) in range(1, 6)


class TestBerkMin:
    def test_picks_from_newest_unsatisfied_learned_clause(self):
        order = BerkMinOrder(4)
        engine = engine_with(4, [[1, 2], [3, 4]])
        order.on_learn(0)
        order.on_learn(1)
        order.bump(3)
        # Newest clause (cid 1) is unsatisfied: picks its best var.
        assert order.pick(engine) == 3

    def test_skips_satisfied_clause(self):
        order = BerkMinOrder(4)
        engine = engine_with(4, [[1, 2], [3, 4]])
        order.on_learn(0)
        order.on_learn(1)
        order.bump(1)
        order.bump(1)
        order.bump(4)
        engine.assume(encode(3))  # satisfies newest clause
        assert order.pick(engine) == 1  # falls to clause 0's best

    def test_skips_deleted_clause(self):
        order = BerkMinOrder(4)
        engine = engine_with(4, [[1, 2], [3, 4]])
        order.on_learn(0)
        order.on_learn(1)
        engine.remove_clause(1)
        order.bump(2)
        assert order.pick(engine) == 2

    def test_fallback_to_vsids(self):
        order = BerkMinOrder(3)
        engine = engine_with(3)
        order.bump(3)
        assert order.pick(engine) == 3  # no learned clauses at all

    def test_max_scan_bounded(self):
        order = BerkMinOrder(3, max_scan=1)
        engine = engine_with(3, [[1, 2], [2, 3]])
        order.on_learn(0)
        order.on_learn(1)
        engine.assume(encode(2))  # satisfies both learned clauses
        order.bump(1)
        # Scans only clause 1 (satisfied), then falls back to VSIDS.
        assert order.pick(engine) == 1


class TestFactory:
    def test_vsids(self):
        assert isinstance(make_order("vsids", 3, 0.95), VsidsOrder)

    def test_berkmin(self):
        assert isinstance(make_order("berkmin", 3, 0.95), BerkMinOrder)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_order("chaff", 3, 0.95)
