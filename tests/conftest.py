"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import strategies as st

from repro.core.clause import Clause
from repro.core.formula import CnfFormula

# -- hypothesis strategies ----------------------------------------------------

dimacs_literals = st.integers(min_value=-50, max_value=50).filter(
    lambda lit: lit != 0)

clause_literal_lists = st.lists(dimacs_literals, min_size=0, max_size=8)


@st.composite
def cnf_formulas(draw, max_vars: int = 12, max_clauses: int = 40,
                 min_clauses: int = 1, max_clause_size: int = 4):
    """Random small CNF formulas (satisfiable or not)."""
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    num_clauses = draw(st.integers(min_value=min_clauses,
                                   max_value=max_clauses))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1,
                                max_value=min(max_clause_size, num_vars)))
        variables = draw(st.lists(
            st.integers(min_value=1, max_value=num_vars),
            min_size=size, max_size=size, unique=True))
        signs = draw(st.lists(st.booleans(), min_size=len(variables),
                              max_size=len(variables)))
        clauses.append([var if sign else -var
                        for var, sign in zip(variables, signs)])
    return CnfFormula(clauses, num_vars=num_vars)


# -- deterministic random formula helpers (for seeded loops) -------------------

def random_formula(rng: random.Random, num_vars: int,
                   num_clauses: int, max_clause_size: int = 3) -> CnfFormula:
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, max_clause_size)
        variables = rng.sample(range(1, num_vars + 1),
                               min(size, num_vars))
        clauses.append([var if rng.random() < 0.5 else -var
                        for var in variables])
    return CnfFormula(clauses, num_vars=num_vars)


def brute_force_sat(formula: CnfFormula) -> bool:
    """Exhaustive satisfiability check (formulas up to ~16 vars)."""
    num_vars = formula.num_vars
    assert num_vars <= 16, "too many variables for brute force"
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if formula.is_satisfied_by(assignment):
            return True
    return False


# -- fixtures --------------------------------------------------------------------

@pytest.fixture(autouse=True)
def _isolated_history_store(tmp_path, monkeypatch):
    """Point the run-history store at a scratch directory.

    CLI ``verify`` runs append to ``$REPRO_HISTORY_DIR`` (or
    ``.repro/``) by default; without this, tests invoking the CLI
    would write history into the working tree.
    """
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / ".repro"))


@pytest.fixture
def tiny_unsat() -> CnfFormula:
    """The full clause set over 2 variables — minimal nontrivial UNSAT."""
    return CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])


@pytest.fixture
def tiny_sat() -> CnfFormula:
    return CnfFormula([[1, 2], [-1, 2], [1, -2]])


@pytest.fixture
def unit_conflict() -> CnfFormula:
    """UNSAT purely by unit propagation (no search needed)."""
    return CnfFormula([[1], [-1, 2], [-2]])


def clause(*lits: int) -> Clause:
    return Clause(lits)
