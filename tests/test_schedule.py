"""Unit tests for the proof-shape cost-model shard planner.

The planner feeds the fault-tolerant parallel backend, so its two
load-bearing properties are pinned hard: every plan is a *partition*
(contiguous shards covering each index exactly once — retry keying and
first-failure reduction rely on it) and a *pure function* of its
inputs (the ``--jobs 1`` vs ``--jobs 4`` artifact-identity guarantee
extends to planned runs only because the plan never depends on pool
state, wall clock, or worker count at execution time).
"""

import json

import pytest

from repro.verify.schedule import (
    MIN_CHECKS_PER_SHARD,
    Calibration,
    ShardPlan,
    load_calibration,
    marked_first_order,
    plan_shards,
    plan_verification1,
    plan_verification2,
    planner_choice,
    predict_costs,
    shard_count,
)


def _assert_partition(plan: ShardPlan, n: int) -> None:
    seen = [i for lo, hi in plan.shards for i in range(lo, hi)]
    assert sorted(seen) == list(range(n))
    assert len(seen) == len(set(seen))
    # Contiguity: each shard starts where the previous ended.
    for (_, hi), (lo, _) in zip(plan.shards, plan.shards[1:]):
        assert lo == hi


class TestPlannerChoice:
    def test_default_is_cost(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_PLANNER", raising=False)
        assert planner_choice() == "cost"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_PLANNER", "contiguous")
        assert planner_choice() == "contiguous"
        # Explicit argument beats the environment.
        assert planner_choice("cost") == "cost"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown shard planner"):
            planner_choice("fastest")


class TestShardCount:
    def test_zero_and_negative(self):
        assert shard_count(0, 4) == 0
        assert shard_count(-3, 4) == 0

    def test_min_checks_clamp(self):
        # 20 checks, 4 jobs: the unclamped split would cut 16 shards
        # of 1-2 checks; the clamp keeps one shard per worker instead.
        assert shard_count(20, 4) == 4
        # Plenty of checks: full over-sharding.
        assert shard_count(16 * MIN_CHECKS_PER_SHARD, 4) == 16

    def test_never_below_one_shard_per_worker(self):
        # A small proof still spreads across the pool.
        assert shard_count(3, 2) == 2
        assert shard_count(2, 8) == 2  # ...but never exceeds n.

    def test_single_job(self):
        assert shard_count(1000, 1) == 4  # SHARDS_PER_JOB


class TestPlanShards:
    def test_empty(self):
        plan = plan_shards([], 4)
        assert plan.shards == ()
        assert plan.dispatch == ()
        assert plan.source == "empty"

    def test_single_check(self):
        plan = plan_shards([5.0], 4)
        assert plan.shards == ((0, 1),)
        _assert_partition(plan, 1)

    def test_partition_and_determinism(self):
        costs = [float(i + 1) for i in range(200)]
        first = plan_shards(costs, 4, planner="cost")
        again = plan_shards(costs, 4, planner="cost")
        assert first == again
        _assert_partition(first, 200)

    def test_cost_planner_balances_ramp(self):
        # Linearly growing costs: the equal-count split gives the last
        # shard ~7x the first's cost; the cost planner must flatten
        # that far below the contiguous skew.
        costs = [float(i + 1) for i in range(512)]
        planned = plan_shards(costs, 4, planner="cost")
        contiguous = plan_shards(costs, 4, planner="contiguous")
        _assert_partition(planned, 512)
        _assert_partition(contiguous, 512)
        assert planned.predicted_skew() < contiguous.predicted_skew()
        assert planned.predicted_skew() < 1.2

    def test_min_checks_respected(self):
        costs = [1.0] * 100 + [1000.0]  # one huge check at the end
        plan = plan_shards(costs, 4, planner="cost", min_checks=16)
        _assert_partition(plan, 101)
        assert all(hi - lo >= min(16, 101 // len(plan.shards))
                   for lo, hi in plan.shards)

    def test_dispatch_is_lpt(self):
        costs = [float(i + 1) for i in range(512)]
        plan = plan_shards(costs, 4, planner="cost")
        dispatched = [plan.predicted[i] for i in plan.dispatch]
        assert dispatched == sorted(dispatched, reverse=True)

    def test_degenerate_costs_fall_back_contiguous(self):
        for costs in ([0.0] * 64, [float("nan")] * 64,
                      [float("inf")] * 64):
            plan = plan_shards(costs, 2, planner="cost")
            assert plan.planner == "contiguous"
            assert plan.source == "degenerate"
            _assert_partition(plan, 64)

    def test_contiguous_planner_equal_counts(self):
        plan = plan_shards([float(i) for i in range(64)], 2,
                           planner="contiguous")
        sizes = {hi - lo for lo, hi in plan.shards}
        assert max(sizes) - min(sizes) <= 1
        _assert_partition(plan, 64)

    def test_as_event_shape(self):
        plan = plan_shards([1.0] * 64, 2, planner="cost")
        event = plan.as_event()
        assert set(event) == {"planner", "source", "shards",
                              "predicted_skew", "first_dispatched"}
        assert event["shards"] == len(plan.shards)
        json.dumps(event)  # obs events must be JSON-serializable


class TestPlanVerification1:
    def test_jobs_independent_indices(self):
        """Different --jobs values cut different shard *bounds* but
        always the same total index set, in the same order within
        shards — the artifact-identity property."""
        widths = [3 + (i % 5) for i in range(300)]
        for jobs in (1, 2, 4, 8):
            plan = plan_verification1(100, widths, jobs)
            _assert_partition(plan, 300)

    def test_deterministic_across_calls(self):
        widths = [4] * 200
        assert plan_verification1(50, widths, 4) \
            == plan_verification1(50, widths, 4)

    def test_rebuild_flatter_than_incremental(self):
        """The rebuild replay term flattens the position ramp, so the
        rebuild plan's first shard is wider (cheap early checks need
        more of them to reach the quantile)."""
        widths = [4] * 400
        inc = plan_verification1(10, widths, 2, mode="incremental")
        reb = plan_verification1(10, widths, 2, mode="rebuild")
        assert inc.shards[0][1] >= reb.shards[0][1]


class TestCalibration:
    def test_density_lookup(self):
        cal = Calibration(((0, 10, 2.0), (10, 20, 8.0)), "r1")
        assert cal.density(0) == 2.0
        assert cal.density(15) == 8.0
        assert cal.density(25) is None

    def test_predict_costs_uses_calibration(self):
        cal = Calibration(((0, 4, 100.0),), "r1")
        costs = predict_costs(10, [4] * 8, calibration=cal)
        # Covered indices use the measured density, the tail falls
        # back to the analytic position term (much smaller here).
        assert all(c == 100.0 for c in costs[:4])
        assert all(c < 100.0 for c in costs[4:])

    def test_load_calibration_roundtrip(self, tmp_path):
        from repro.obs.insight.history import HistoryStore

        store = HistoryStore(str(tmp_path))
        store.append({
            "schema": "repro.obs.run/v1", "id": "r42",
            "instance": "/bench/pipe_5.cnf", "mode": "incremental",
            "attribution": {"utilization": 0.8, "skew_ratio": 1.1,
                            "shards": [
                                {"lo": 0, "hi": 50, "props": 500},
                                {"lo": 50, "hi": 100, "props": 2500},
                            ]}})
        cal = load_calibration("pipe_5.cnf", "incremental",
                               str(tmp_path))
        assert cal is not None
        assert cal.run_id == "r42"
        assert cal.density(10) == 10.0
        assert cal.density(60) == 50.0
        plan = plan_verification1(10, [4] * 100, 2,
                                  instance="pipe_5.cnf",
                                  history_dir=str(tmp_path))
        assert plan.source == "calibrated:r42"
        _assert_partition(plan, 100)

    def test_missing_store_is_none(self, tmp_path):
        assert load_calibration("x.cnf",
                                directory=str(tmp_path / "no")) is None
        assert load_calibration(None) is None


class TestPlanVerification2:
    def test_marked_first_order(self):
        order = marked_first_order(6, [1, 4])
        assert order == [4, 1, 5, 3, 2, 0]
        # Out-of-range marks are dropped, not crashed on.
        assert marked_first_order(3, [7, -1, 2]) == [2, 1, 0]

    def test_replay_plan_covers_every_position(self):
        widths = [4] * 120
        plan = plan_verification2(10, widths, [5, 80, 100], 4)
        assert plan.source == "marked-first"
        assert sorted(plan.indices) == list(range(120))
        _assert_partition(plan, 120)  # bounds address positions
        # The first positions are the marked set, descending.
        assert list(plan.indices[:3]) == [100, 80, 5]


class TestBackendIntegration:
    def test_make_shards_clamped(self):
        from repro.verify.parallel import make_shards

        shards = make_shards(20, 4)
        assert len(shards) == shard_count(20, 4)
        seen = [i for lo, hi in shards for i in range(lo, hi)]
        assert sorted(seen) == list(range(20))

    def test_planned_shards_matches_planner(self):
        from repro.benchgen.registry import pigeonhole
        from repro.proofs.conflict_clause import ConflictClauseProof
        from repro.solver.cdcl import solve
        from repro.verify.parallel import planned_shards

        formula = pigeonhole(4)
        result = solve(formula)
        proof = ConflictClauseProof.from_log(result.log)
        plan = planned_shards(formula, proof, 4, mode="incremental")
        direct = plan_verification1(
            formula.num_clauses,
            [len(proof[i]) for i in range(len(proof))], 4,
            mode="incremental")
        assert plan.shards == direct.shards
        _assert_partition(plan, len(proof))
