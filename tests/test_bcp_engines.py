"""Unit and differential tests for the BCP engines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcp.arena import ArenaPropagator
from repro.bcp.counting import CountingPropagator
from repro.bcp.engine import FALSE, TRUE, UNDEF
from repro.bcp.watched import WatchedPropagator
from repro.core.literals import encode

ENGINES = [WatchedPropagator, CountingPropagator, ArenaPropagator]


def enc_clause(lits):
    return [encode(lit) for lit in lits]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestBasicPropagation:
    def test_unit_propagates_at_level0(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        assert engine.propagate() is None
        assert engine.value(encode(1)) == TRUE
        assert engine.value(encode(-1)) == FALSE

    def test_chain(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.add_clause(enc_clause([-1, 2]))
        engine.add_clause(enc_clause([-2, 3]))
        assert engine.propagate() is None
        for var in (1, 2, 3):
            assert engine.value(encode(var)) == TRUE

    def test_conflict_detected(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.add_clause(enc_clause([-1, 2]))
        cid = engine.add_clause(enc_clause([-1, -2]))
        assert engine.propagate() == cid

    def test_conflicting_units(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        cid = engine.add_clause(enc_clause([-1]))
        assert engine.propagate() == cid

    def test_empty_clause_conflicts(self, engine_cls):
        engine = engine_cls()
        cid = engine.add_clause([])
        assert engine.propagate() == cid

    def test_reason_and_level_recorded(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        cid = engine.add_clause(enc_clause([-1, 2]))
        engine.propagate()
        assert engine.reasons[2] == cid
        assert engine.levels[2] == 0

    def test_no_spurious_propagation(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1, 2]))
        assert engine.propagate() is None
        assert engine.value(encode(1)) == UNDEF
        assert engine.value(encode(2)) == UNDEF


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestAssumptionsAndBacktracking:
    def test_assume_and_propagate(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([-1, 2]))
        engine.assume(encode(1))
        assert engine.propagate() is None
        assert engine.value(encode(2)) == TRUE
        assert engine.levels[2] == 1

    def test_backtrack_restores(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([-1, 2]))
        engine.assume(encode(1))
        engine.propagate()
        engine.backtrack(0)
        assert engine.value(encode(1)) == UNDEF
        assert engine.value(encode(2)) == UNDEF
        assert engine.decision_level == 0
        assert not engine.trail

    def test_backtrack_keeps_lower_levels(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([3]))
        engine.propagate()
        engine.assume(encode(1))
        engine.propagate()
        engine.assume(encode(2))
        engine.propagate()
        engine.backtrack(1)
        assert engine.value(encode(3)) == TRUE
        assert engine.value(encode(1)) == TRUE
        assert engine.value(encode(2)) == UNDEF

    def test_backtrack_after_conflict_then_repropagate(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([-1, 2]))
        engine.add_clause(enc_clause([-1, -2]))
        engine.assume(encode(1))
        assert engine.propagate() is not None
        engine.backtrack(0)
        engine.assume(encode(-1))
        assert engine.propagate() is None

    def test_enqueue_opposite_fails(self, engine_cls):
        engine = engine_cls(2)
        engine.assume(encode(1))
        assert engine.enqueue(encode(-1), None) is False
        assert engine.enqueue(encode(1), None) is True  # no-op


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestCeiling:
    def test_ceiling_blocks_later_clause(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)   # 0
        cid = engine.add_clause(enc_clause([-1]), propagate_units=False)
        engine.new_level()
        engine.enqueue(encode(-2), None)
        # Without the unit clause (-1) in scope, nothing conflicts.
        assert engine.propagate(ceiling=1) is None
        assert engine.value(encode(1)) == TRUE  # clause 0 propagated 1
        del cid

    def test_ceiling_zero_blocks_everything(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)
        engine.new_level()
        engine.enqueue(encode(-1), None)
        engine.enqueue(encode(-2), None)
        assert engine.propagate(ceiling=0) is None

    def test_full_propagation_conflicts(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)
        engine.new_level()
        engine.enqueue(encode(-1), None)
        engine.enqueue(encode(-2), None)
        assert engine.propagate(ceiling=1) == 0

    def test_ceiling_respects_empty_clause(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]), propagate_units=False)
        cid = engine.add_clause([])
        assert engine.propagate(ceiling=1) is None
        assert engine.propagate(ceiling=2) == cid


class TestClauseRemoval:
    def test_removed_clause_inert(self):
        engine = WatchedPropagator()
        engine.add_clause(enc_clause([1]))
        cid = engine.add_clause(enc_clause([-1, 2]))
        engine.remove_clause(cid)
        assert engine.propagate() is None
        assert engine.value(encode(2)) == UNDEF

    def test_counting_rejects_removal(self):
        engine = CountingPropagator()
        cid = engine.add_clause(enc_clause([1, 2]))
        with pytest.raises(NotImplementedError):
            engine.remove_clause(cid)

    def test_tombstone_empty(self):
        engine = WatchedPropagator()
        cid = engine.add_clause(enc_clause([1, 2, 3]))
        engine.remove_clause(cid)
        assert engine.clauses[cid] == []

    def test_arena_removed_clause_inert(self):
        engine = ArenaPropagator()
        engine.add_clause(enc_clause([1]))
        cid = engine.add_clause(enc_clause([-1, 2]))
        engine.remove_clause(cid)
        assert engine.propagate() is None
        assert engine.value(encode(2)) == UNDEF
        # The pool is immutable: removal flags the clause instead of
        # rewriting it, and the accessors respect the tombstone.
        assert engine.clause_len(cid) == 0
        assert tuple(engine.clause_lits(cid)) == ()


class TestDifferential:
    """Every engine must agree on every propagation outcome."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_engines_agree(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=10))
        num_clauses = data.draw(st.integers(min_value=1, max_value=25))
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        rng = random.Random(seed)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 4)
            variables = rng.sample(range(1, num_vars + 1),
                                   min(size, num_vars))
            clauses.append([v if rng.random() < .5 else -v
                            for v in variables])
        decisions = [rng.choice([v, -v])
                     for v in rng.sample(range(1, num_vars + 1),
                                         num_vars)]

        def run(engine_cls):
            engine = engine_cls(num_vars)
            for cl in clauses:
                engine.add_clause(enc_clause(cl))
            conflicts = []
            confl = engine.propagate()
            if confl is not None:
                return set(), ["L0"]
            for lit in decisions:
                if engine.value(encode(lit)) != UNDEF:
                    continue
                engine.assume(encode(lit))
                confl = engine.propagate()
                if confl is not None:
                    conflicts.append(lit)
                    engine.backtrack(engine.decision_level - 1)
            assigned = {engine.trail[i] for i in range(len(engine.trail))}
            return assigned, conflicts

        trail_w, confl_w = run(WatchedPropagator)
        trail_c, confl_c = run(CountingPropagator)
        trail_a, confl_a = run(ArenaPropagator)
        # Same assignments deduced and the same decisions conflicted.
        assert trail_w == trail_c == trail_a
        assert confl_w == confl_c == confl_a


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestRetirement:
    def test_retired_clause_does_not_propagate(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)
        engine.add_clause(enc_clause([-1, 3]), propagate_units=False)
        engine.retire_above(1)
        engine.new_level()
        engine.enqueue(encode(-2), None)
        assert engine.propagate() is None
        assert engine.value(encode(1)) == TRUE   # clause 0 is live
        assert engine.value(encode(3)) == UNDEF  # clause 1 is retired

    def test_retire_ceiling_only_lowers(self, engine_cls):
        engine = engine_cls(3)
        engine.retire_above(5)
        engine.retire_above(10)
        assert engine.retire_ceiling == 5
        engine.retire_above(2)
        assert engine.retire_ceiling == 2

    def test_retired_empty_clause_no_standing_conflict(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]), propagate_units=False)
        cid = engine.add_clause([])
        engine.retire_above(cid)
        assert engine.propagate() is None

    def test_purge_counted(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)
        engine.add_clause(enc_clause([1, 3]), propagate_units=False)
        engine.retire_above(1)
        engine.new_level()
        engine.enqueue(encode(-1), None)
        assert engine.propagate() is None
        assert engine.counters.purged >= 1
        assert engine.value(encode(2)) == TRUE
        assert engine.value(encode(3)) == UNDEF


class TestWatchedLazyPurge:
    def test_retired_entry_dropped_from_watch_list(self):
        engine = WatchedPropagator()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)
        cid = engine.add_clause(enc_clause([1, 3]),
                                propagate_units=False)
        assert cid in engine.watches[encode(1)]
        engine.retire_above(cid)
        engine.new_level()
        engine.enqueue(encode(-1), None)
        engine.propagate()
        assert cid not in engine.watches[encode(1)]

    def test_detach_after_purge_counts_miss(self):
        engine = WatchedPropagator()
        cid = engine.add_clause(enc_clause([1, 2]),
                                propagate_units=False)
        engine.retire_above(cid)
        engine.new_level()
        engine.enqueue(encode(-1), None)
        engine.propagate()  # purges the watches[1] entry
        engine.backtrack(0)
        engine.remove_clause(cid)
        assert engine.counters.detach_misses == 1


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestUnwindTo:
    def test_partial_unwind_and_rescan(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.add_clause(enc_clause([-1, 2]))
        assert engine.propagate() is None
        assert engine.trail == [encode(1), encode(2)]
        engine.unwind_to(1)
        assert engine.value(encode(1)) == TRUE
        assert engine.value(encode(2)) == UNDEF
        assert engine.reasons[2] is None
        # The surviving prefix was already scanned; re-closing the
        # trail requires an explicit rescan from the start.
        engine.qhead = 0
        assert engine.propagate() is None
        assert engine.value(encode(2)) == TRUE

    def test_unwind_noop_past_end(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.propagate()
        engine.unwind_to(5)
        assert engine.trail == [encode(1)]

    def test_unwind_below_open_level_rejected(self, engine_cls):
        engine = engine_cls(2)
        engine.add_clause(enc_clause([1]))
        engine.propagate()
        engine.assume(encode(2))
        with pytest.raises(ValueError):
            engine.unwind_to(0)


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestCounters:
    def test_assignments_counted(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.add_clause(enc_clause([-1, 2]))
        engine.propagate()
        assert engine.counters.assignments == 2

    def test_counter_reset_and_dict(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.propagate()
        snapshot = engine.counters.as_dict()
        assert snapshot["assignments"] == 1
        assert set(snapshot) == {"assignments", "watch_visits",
                                 "clause_visits", "purged",
                                 "detach_misses"}
        engine.counters.reset()
        assert engine.counters.assignments == 0


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestAssignmentView:
    def test_assignment_mapping(self, engine_cls):
        engine = engine_cls()
        engine.add_clause(enc_clause([1]))
        engine.add_clause(enc_clause([-2]))
        engine.propagate()
        assert engine.assignment() == {1: True, 2: False}

    def test_empty(self, engine_cls):
        assert engine_cls(3).assignment() == {}
