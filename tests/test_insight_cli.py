"""CLI tests for the proof-insight layer.

Covers the insight artifact flags (``--depgraph-out``,
``--depgraph-dot``, ``--analytics-out``), the profiling hooks
(``--profile``), the run-history verbs (``repro obs history / compare /
check-regression``) with their exit-code contract, the interrupt-safe
artifact flush (a ^C mid-verification leaves complete, schema-valid
artifacts), and the ``python -m repro.obs.validate`` dispatcher for the
new schemas.
"""

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_INTERRUPT, EXIT_RESOURCE_LIMIT, main
from repro.core.dimacs import write_dimacs
from repro.core.formula import CnfFormula
from repro.obs import validate_analytics, validate_depgraph
from repro.obs.insight.depgraph import read_depgraph_jsonl
from repro.obs.insight.history import RUN_SCHEMA, HistoryStore
from repro.obs.validate import main as validate_main


@pytest.fixture
def unsat_cnf(tmp_path):
    path = tmp_path / "unsat.cnf"
    write_dimacs(CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2],
                             [3, 4]]), path)
    return path


@pytest.fixture
def good_proof(unsat_cnf, tmp_path):
    path = tmp_path / "good.ccp"
    assert main(["solve", str(unsat_cnf), "--proof", str(path)]) == 20
    return path


class TestInsightArtifacts:
    def test_depgraph_and_analytics(self, unsat_cnf, good_proof,
                                    tmp_path, capsys):
        dep = tmp_path / "dep.jsonl"
        dot = tmp_path / "dep.dot"
        shape = tmp_path / "shape.json"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--depgraph-out", str(dep),
                     "--depgraph-dot", str(dot),
                     "--analytics-out", str(shape),
                     "--no-history"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c depgraph written to" in out
        assert "c analytics written to" in out

        lines = read_depgraph_jsonl(dep)
        assert validate_depgraph(lines) == []
        assert lines[0]["meta"]["num_input"] == 5
        assert dot.read_text().startswith("digraph depgraph {")

        doc = json.loads(shape.read_text())
        assert validate_analytics(doc) == []
        assert doc["analytics"]["checked"] >= 1

    def test_stats_footer_gains_insight_lines(self, unsat_cnf,
                                              good_proof, tmp_path,
                                              capsys):
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--analytics-out", str(tmp_path / "a.json"),
                     "--stats", "--no-history"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c insight: local=" in out
        assert "c insight: core=" in out  # verification2 default

    def test_depgraph_under_jobs(self, unsat_cnf, good_proof, tmp_path,
                                 capsys):
        dep = tmp_path / "dep.jsonl"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--procedure", "verification1", "--mode", "rebuild",
                     "--jobs", "2", "--depgraph-out", str(dep),
                     "--no-history"])
        assert code == 0
        lines = read_depgraph_jsonl(dep)
        assert validate_depgraph(lines) == []
        assert lines[0]["meta"]["jobs"] == 2
        assert len(lines) > 1  # worker buffers made it back

    def test_validate_dispatcher(self, unsat_cnf, good_proof, tmp_path,
                                 capsys):
        dep = tmp_path / "dep.jsonl"
        shape = tmp_path / "shape.json"
        assert main(["verify", str(unsat_cnf), str(good_proof),
                     "--depgraph-out", str(dep),
                     "--analytics-out", str(shape),
                     "--no-history"]) == 0
        capsys.readouterr()
        # Typed flags and schema-dispatched positionals both pass.
        assert validate_main(["--depgraph", str(dep),
                              "--analytics", str(shape)]) == 0
        assert validate_main([str(dep), str(shape)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok:") == 4

    def test_validate_rejects_unknown_schema(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "nope/v9"}))
        assert validate_main([str(bogus)]) == 1
        out = capsys.readouterr().out
        assert "unknown schema id 'nope/v9'" in out
        assert "repro.obs.depgraph/v1" in out  # names the known ids


class TestProfile:
    def test_profile_artifacts(self, unsat_cnf, good_proof, tmp_path,
                               capsys):
        prof = tmp_path / "run.prof"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--profile", str(prof), "--no-history"])
        assert code == 0
        assert "c profile written to" in capsys.readouterr().out
        assert prof.exists()
        folded = (tmp_path / "run.prof.folded").read_text()
        # Collapsed stacks: "frame;frame;frame weight" lines.
        assert any(line.rsplit(" ", 1)[-1].isdigit()
                   for line in folded.splitlines() if line)
        phases = json.loads((tmp_path / "run.prof.phases.json")
                            .read_text())
        assert "phase_times" in phases

    def test_profile_is_loadable_pstats(self, unsat_cnf, good_proof,
                                        tmp_path):
        import pstats

        prof = tmp_path / "run.prof"
        assert main(["verify", str(unsat_cnf), str(good_proof),
                     "--profile", str(prof), "--no-history"]) == 0
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0


class TestHistoryVerbs:
    def run_verify(self, unsat_cnf, good_proof, history):
        return main(["verify", str(unsat_cnf), str(good_proof),
                     "--history-dir", str(history)])

    def test_verify_records_history_by_default(self, unsat_cnf,
                                               good_proof, tmp_path):
        history = tmp_path / "hist"
        assert self.run_verify(unsat_cnf, good_proof, history) == 0
        records = HistoryStore(str(history)).read()
        assert len(records) == 1
        assert records[0]["schema"] == RUN_SCHEMA
        assert records[0]["outcome"] == "proof_is_correct"
        assert records[0]["instance"] == str(unsat_cnf)

    def test_no_history_flag(self, unsat_cnf, good_proof, tmp_path):
        history = tmp_path / "hist"
        assert main(["verify", str(unsat_cnf), str(good_proof),
                     "--history-dir", str(history),
                     "--no-history"]) == 0
        assert HistoryStore(str(history)).read() == []

    def test_history_listing(self, unsat_cnf, good_proof, tmp_path,
                             capsys):
        history = tmp_path / "hist"
        self.run_verify(unsat_cnf, good_proof, history)
        capsys.readouterr()
        assert main(["obs", "history", "--history-dir",
                     str(history)]) == 0
        out = capsys.readouterr().out
        assert "outcome" in out and "proof_is_correct" in out

    def test_compare_prints_delta_table(self, unsat_cnf, good_proof,
                                        tmp_path, capsys):
        history = tmp_path / "hist"
        self.run_verify(unsat_cnf, good_proof, history)
        self.run_verify(unsat_cnf, good_proof, history)
        capsys.readouterr()
        assert main(["obs", "compare", "-2", "-1",
                     "--history-dir", str(history)]) == 0
        out = capsys.readouterr().out
        for metric in ("wall_time", "props_per_sec", "checks"):
            assert metric in out
        assert "delta%" in out

    def test_check_regression_identical_runs_exit_0(
            self, unsat_cnf, good_proof, tmp_path, capsys):
        history = tmp_path / "hist"
        self.run_verify(unsat_cnf, good_proof, history)
        records = HistoryStore(str(history)).read()
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(records[-1]))
        capsys.readouterr()
        code = main(["obs", "check-regression",
                     "--baseline", str(baseline), "--current", "-1",
                     "--history-dir", str(history),
                     "--max-wall-pct", "0",
                     "--max-props-drop-pct", "0",
                     "--max-phase-pct", "0"])
        assert code == 0
        assert "c no regression past thresholds" \
            in capsys.readouterr().out

    def test_check_regression_seeded_slowdown_exits_3(
            self, unsat_cnf, good_proof, tmp_path, capsys):
        history = tmp_path / "hist"
        self.run_verify(unsat_cnf, good_proof, history)
        record = HistoryStore(str(history)).read()[-1]
        # Seed a baseline that was twice as fast as the real run.
        seeded = dict(record)
        seeded["id"] = "baseline-seeded"
        seeded["wall_time"] = record["wall_time"] / 2 or 0.001
        seeded["props_per_sec"] = (record["props_per_sec"] or 1.0) * 2
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(seeded))
        capsys.readouterr()
        code = main(["obs", "check-regression",
                     "--baseline", str(baseline), "--current", "-1",
                     "--history-dir", str(history),
                     "--max-wall-pct", "25",
                     "--max-props-drop-pct", "25"])
        assert code == EXIT_RESOURCE_LIMIT
        out = capsys.readouterr().out
        assert "c regression:" in out
        assert "props_per_sec dropped" in out

    def test_missing_selector_exits_2(self, tmp_path, capsys):
        code = main(["obs", "compare", "-2", "-1",
                     "--history-dir", str(tmp_path / "empty")])
        assert code == EXIT_ERROR
        assert "c error:" in capsys.readouterr().err

    def test_verify_drup_records_history(self, unsat_cnf, tmp_path,
                                         capsys):
        drup = tmp_path / "trace.drup"
        assert main(["solve", str(unsat_cnf), "--drup",
                     str(drup)]) == 20
        history = tmp_path / "hist"
        assert main(["verify-drup", str(unsat_cnf), str(drup),
                     "--history-dir", str(history)]) == 0
        records = HistoryStore(str(history)).read()
        assert len(records) == 1
        assert records[0]["command"] == "verify-drup"


class TestInterruptFlush:
    """Satellite S1: ^C mid-verification still flushes every artifact."""

    def interrupt_after(self, monkeypatch, calls: int):
        from repro.verify.checker import ProofChecker

        original = ProofChecker.check_clause
        state = {"calls": 0}

        def flaky(self, index):
            state["calls"] += 1
            if state["calls"] > calls:
                raise KeyboardInterrupt
            return original(self, index)

        monkeypatch.setattr(ProofChecker, "check_clause", flaky)

    def test_partial_artifacts_flushed(self, unsat_cnf, good_proof,
                                       tmp_path, monkeypatch, capsys):
        self.interrupt_after(monkeypatch, 1)
        dep = tmp_path / "dep.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--depgraph-out", str(dep),
                     "--metrics-out", str(metrics),
                     "--no-history"])
        assert code == EXIT_INTERRUPT
        captured = capsys.readouterr()
        assert "c error: interrupted" in captured.err

        # The partial depgraph is complete-as-written and schema-valid.
        lines = read_depgraph_jsonl(dep)
        assert validate_depgraph(lines) == []
        assert lines[0]["run"]["interrupted"] is True
        assert len(lines) == 2  # exactly the one completed check

        doc = json.loads(metrics.read_text())
        assert doc["run"]["interrupted"] is True
        assert doc["run"]["elapsed"] is None

    def test_interrupt_with_profile(self, unsat_cnf, good_proof,
                                    tmp_path, monkeypatch, capsys):
        self.interrupt_after(monkeypatch, 0)
        prof = tmp_path / "run.prof"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--profile", str(prof), "--no-history"])
        assert code == EXIT_INTERRUPT
        assert prof.exists()  # the profile of the partial run

    def test_no_tmp_litter_after_interrupt(self, unsat_cnf, good_proof,
                                           tmp_path, monkeypatch):
        self.interrupt_after(monkeypatch, 1)
        dep = tmp_path / "dep.jsonl"
        main(["verify", str(unsat_cnf), str(good_proof),
              "--depgraph-out", str(dep), "--no-history"])
        # Atomic writes never leave *.tmp behind.
        assert not list(tmp_path.glob("*.tmp"))


class TestTimelineCli:
    """The ``repro obs timeline`` / ``obs top`` / ``history prune``
    operational verbs, end to end through the CLI."""

    def _trace(self, unsat_cnf, good_proof, tmp_path, jobs=None):
        trace = tmp_path / "trace.jsonl"
        argv = ["verify", str(unsat_cnf), str(good_proof),
                "--trace-out", str(trace), "--no-history"]
        if jobs:
            argv += ["--procedure", "verification1",
                     "--jobs", str(jobs)]
        assert main(argv) == 0
        return trace

    def test_timeline_artifact_validates(self, unsat_cnf, good_proof,
                                         tmp_path, capsys):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("parallel backend needs fork")
        trace = self._trace(unsat_cnf, good_proof, tmp_path, jobs=2)
        out_json = tmp_path / "timeline.json"
        out_html = tmp_path / "timeline.html"
        capsys.readouterr()
        assert main(["obs", "timeline", str(trace),
                     "--out", str(out_json),
                     "--html", str(out_html)]) == 0
        out = capsys.readouterr().out
        assert "utilization=" in out
        assert "critical path" in out
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro.obs.timeline/v1"
        assert doc["utilization"] is not None
        assert doc["attribution"] is not None
        assert doc["dropped"] == {"duplicates": 0, "orphans": 0,
                                  "open": 0}
        assert out_html.read_text().startswith("<!DOCTYPE html>")
        assert validate_main(["--timeline", str(out_json)]) == 0
        assert validate_main([str(out_json)]) == 0  # sniffed

    def test_timeline_sequential_trace(self, unsat_cnf, good_proof,
                                       tmp_path, capsys):
        trace = self._trace(unsat_cnf, good_proof, tmp_path)
        capsys.readouterr()
        assert main(["obs", "timeline", str(trace), "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_timeline_missing_file_exits_error(self, tmp_path,
                                               capsys):
        code = main(["obs", "timeline", str(tmp_path / "nope.jsonl")])
        assert code == EXIT_ERROR
        assert "c error:" in capsys.readouterr().err

    def test_live_dir_and_top(self, unsat_cnf, good_proof, tmp_path,
                              capsys):
        live = tmp_path / "live"
        assert main(["verify", str(unsat_cnf), str(good_proof),
                     "--live-dir", str(live), "--no-history"]) == 0
        files = list(live.glob("*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["schema"] == "repro.obs.live/v1"
        assert doc["state"] == "done"
        assert doc["meta"]["command"] == "verify"
        capsys.readouterr()
        assert main(["obs", "top", "--live-dir", str(live)]) == 0
        out = capsys.readouterr().out
        assert "RUN" in out and "done" in out

    def test_top_empty_dir(self, tmp_path, capsys):
        assert main(["obs", "top",
                     "--live-dir", str(tmp_path / "none")]) == 0
        assert "no live runs" in capsys.readouterr().out

    def test_history_prune(self, unsat_cnf, good_proof, tmp_path,
                           capsys):
        history = tmp_path / "hist"
        for _ in range(3):
            assert main(["verify", str(unsat_cnf), str(good_proof),
                         "--history-dir", str(history)]) == 0
        capsys.readouterr()
        assert main(["obs", "history", "--history-dir", str(history),
                     "prune", "--keep", "1"]) == 0
        assert "2 fingerprint(s) removed" in capsys.readouterr().out
        assert len(HistoryStore(str(history)).read()) == 1

    def test_parallel_history_carries_attribution(
            self, unsat_cnf, good_proof, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("parallel backend needs fork")
        history = tmp_path / "hist"
        assert main(["verify", str(unsat_cnf), str(good_proof),
                     "--procedure", "verification1", "--jobs", "2",
                     "--history-dir", str(history)]) == 0
        record = HistoryStore(str(history)).read()[-1]
        attribution = record["attribution"]
        assert attribution is not None
        assert attribution["workers"] >= 1
        assert 0.0 <= attribution["utilization"] <= 1.0
        assert attribution["shards"]

    def test_min_utilization_gate_exits_3(self, unsat_cnf, good_proof,
                                          tmp_path, capsys):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("parallel backend needs fork")
        history = tmp_path / "hist"
        assert main(["verify", str(unsat_cnf), str(good_proof),
                     "--procedure", "verification1", "--jobs", "2",
                     "--history-dir", str(history)]) == 0
        capsys.readouterr()
        code = main(["obs", "check-regression",
                     "--history-dir", str(history),
                     "--baseline", "-1", "--current", "-1",
                     "--min-utilization", "100"])
        assert code == EXIT_RESOURCE_LIMIT
        assert "utilization" in capsys.readouterr().out
