"""Tests for the memory telemetry layer (``repro.obs.mem``).

Covers the acceptance claims the tentpole rests on: procfs parsing and
the getrusage fallback, gauge max-merge associativity (the algebra the
cross-worker peak-RSS aggregation relies on), ``repro.obs.mem/v1``
schema validation, sampler fault injection (a dying sampler must never
touch the verdict), live-view staleness, the timeline memory section,
and the peak-RSS regression gate.
"""

import json

import pytest

from repro.obs import (
    MemSampler,
    MetricsRegistry,
    Obs,
    Tracer,
    build_timeline,
    check_regression,
    format_top_table,
    mem_document,
    parse_proc_status,
    read_rss,
    render_timeline_text,
    reset_peak_rss,
    validate_mem,
    write_mem_json,
)
from repro.obs.mem import (
    MAX_CONSECUTIVE_FAILURES,
    MAX_SAMPLES,
    arena_mem_stats,
)

PROC_STATUS = """\
Name:\trepro
Umask:\t0022
VmPeak:\t  123456 kB
VmSize:\t  100000 kB
VmHWM:\t   51200 kB
VmRSS:\t   40960 kB
Threads:\t1
"""


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_reader(rss=1000, peak=2000, source="proc"):
    def reader():
        return (rss, peak, source)
    return reader


# -- RSS sources -----------------------------------------------------------

class TestReadRss:
    def test_parse_proc_status(self):
        parsed = parse_proc_status(PROC_STATUS)
        assert parsed == {"rss_bytes": 40960 * 1024,
                          "peak_rss_bytes": 51200 * 1024}

    def test_parse_tolerates_junk(self):
        assert parse_proc_status("") == {}
        assert parse_proc_status("VmRSS:\n") == {}
        assert parse_proc_status("VmRSS:\tnot-a-number kB\n") == {}
        # A file with only the peak still yields the peak.
        assert parse_proc_status("VmHWM:\t10 kB\n") == {
            "peak_rss_bytes": 10 * 1024}

    def test_proc_source(self, tmp_path):
        status = tmp_path / "status"
        status.write_text(PROC_STATUS)
        reading = read_rss(proc_status_path=str(status))
        assert reading == (40960 * 1024, 51200 * 1024, "proc")

    def test_getrusage_fallback(self, tmp_path):
        reading = read_rss(
            proc_status_path=str(tmp_path / "does-not-exist"))
        assert reading is not None
        rss, peak, source = reading
        assert source == "getrusage"
        assert rss == peak > 0

    def test_total_failure_returns_none(self, tmp_path, monkeypatch):
        import resource

        def boom(who):
            raise OSError("injected")
        monkeypatch.setattr(resource, "getrusage", boom)
        assert read_rss(
            proc_status_path=str(tmp_path / "missing")) is None

    def test_reset_peak_rss_unsupported_path(self, tmp_path):
        assert reset_peak_rss(
            clear_refs_path=str(tmp_path / "no" / "clear_refs")) \
            is False


# -- gauge algebra ---------------------------------------------------------

class TestGaugeMaxMerge:
    """Cross-worker peak aggregation rests on max-merge being
    associative and commutative; pin it down."""

    def _registry_with(self, value):
        registry = MetricsRegistry()
        registry.gauge("repro_mem_peak_rss_bytes").set(value)
        return registry

    def test_merge_orders_agree(self):
        values = (300, 100, 200)
        left = self._registry_with(values[0])
        left.merge(self._registry_with(values[1]).snapshot())
        left.merge(self._registry_with(values[2]).snapshot())

        right = self._registry_with(values[2])
        right.merge(self._registry_with(values[0]).snapshot())
        right.merge(self._registry_with(values[1]).snapshot())

        entry_l = left.snapshot()["repro_mem_peak_rss_bytes"]
        entry_r = right.snapshot()["repro_mem_peak_rss_bytes"]
        assert entry_l["value"]["max"] == entry_r["value"]["max"] == 300

    def test_max_survives_lower_set(self):
        registry = self._registry_with(500)
        registry.gauge("repro_mem_peak_rss_bytes").set(50)
        entry = registry.snapshot()["repro_mem_peak_rss_bytes"]
        assert entry["value"]["value"] == 50
        assert entry["value"]["max"] == 500


# -- the sampler -----------------------------------------------------------

class TestMemSampler:
    def test_sample_publishes_everywhere(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        tracer = Tracer(run_id="r", clock=clock, epoch=0.0)
        sampler = MemSampler(metrics=metrics, tracer=tracer,
                             reader=make_reader(rss=1111, peak=2222),
                             wall=clock)
        with tracer.span("verify"):
            entry = sampler.sample()
        assert entry == {"ts": 0.0, "rss_bytes": 1111,
                         "peak_rss_bytes": 2222}
        assert sampler.peak_rss_bytes == 2222
        assert sampler.rss_bytes == 1111
        assert sampler.source == "proc"
        snap = metrics.snapshot()
        assert snap["repro_mem_rss_bytes"]["value"]["value"] == 1111
        assert snap["repro_mem_peak_rss_bytes"]["value"]["max"] == 2222
        events = [e for e in tracer.events if e["type"] == "event"]
        assert events and events[0]["name"] == "mem_sample"
        assert events[0]["attrs"]["rss_bytes"] == 1111

    def test_death_after_consecutive_failures(self):
        calls = []

        def failing_reader():
            calls.append(1)
            raise OSError("injected procfs failure")

        sampler = MemSampler(reader=failing_reader)
        for _ in range(MAX_CONSECUTIVE_FAILURES):
            assert sampler.sample() is None
        assert sampler.dead
        assert sampler.failures == MAX_CONSECUTIVE_FAILURES
        # Dead means quiet: no further reader calls.
        assert sampler.sample() is None
        assert len(calls) == MAX_CONSECUTIVE_FAILURES
        summary = sampler.summary()
        assert summary["sampler_dead"] is True
        assert summary["num_samples"] == 0

    def test_success_resets_failure_streak(self):
        readings = iter([None] * (MAX_CONSECUTIVE_FAILURES - 1)
                        + [(10, 20, "fake")] + [None] * 3)
        sampler = MemSampler(reader=lambda: next(readings))
        for _ in range(MAX_CONSECUTIVE_FAILURES + 3):
            sampler.sample()
        assert not sampler.dead

    def test_buffer_thinning_is_bounded(self):
        clock = FakeClock()
        sampler = MemSampler(reader=make_reader(), wall=clock)
        for i in range(MAX_SAMPLES + 1):
            clock.now = float(i)
            sampler.sample()
        assert len(sampler.samples) <= MAX_SAMPLES
        # Thinning keeps a roughly uniform trajectory, oldest first.
        ts = [s["ts"] for s in sampler.samples]
        assert ts == sorted(ts)
        assert sampler.summary()["num_samples"] == len(sampler.samples)

    def test_dead_sampler_never_affects_verdict(self):
        """Fault injection: an instrumented run whose sampler dies
        (unreadable RSS source) must verify exactly as if memory
        telemetry were absent."""
        from repro.benchgen.php import pigeonhole
        from repro.proofs.conflict_clause import ConflictClauseProof
        from repro.solver.cdcl import solve
        from repro.verify.verification import verify_proof_v1

        formula = pigeonhole(4)
        result = solve(formula)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)

        def failing_reader():
            raise OSError("injected")

        sampler = MemSampler(reader=failing_reader)
        obs = Obs(metrics=MetricsRegistry(), mem=sampler)
        sampler.sample()  # pre-run beat, already failing
        report = verify_proof_v1(formula, proof, obs=obs)
        sampler.sample()
        assert report.ok
        assert sampler.failures > 0
        # The mem document is still writable and schema-valid.
        doc = mem_document(sampler, run={"id": obs.run_id})
        assert validate_mem(doc) == []


# -- arena gauges ----------------------------------------------------------

class TestArenaStats:
    def test_arena_engine_reports(self):
        from repro.bcp.arena import ArenaPropagator
        from repro.core.literals import encode

        engine = ArenaPropagator(3)
        cid = engine.add_clause([encode(1), encode(2), encode(3)],
                                propagate_units=False)
        stats = arena_mem_stats(engine)
        assert stats is not None
        assert stats["pool_bytes"] > 0
        assert stats["live_clauses"] == 1
        # Two watched literals, each holding a (cid, blocker) pair.
        assert stats["watch_entries"] == 4
        assert stats["fragmentation"] == 0.0
        engine.remove_clause(cid)
        after = arena_mem_stats(engine)
        assert after["live_clauses"] == 0
        assert after["fragmentation"] > 0.0

    def test_non_arena_engine_is_none(self):
        from repro.bcp.watched import WatchedPropagator

        assert arena_mem_stats(WatchedPropagator(2)) is None


# -- the artifact ----------------------------------------------------------

class TestMemArtifact:
    def _sampler(self):
        clock = FakeClock()
        sampler = MemSampler(reader=make_reader(), wall=clock)
        sampler.sample()
        clock.now = 1.0
        sampler.sample()
        return sampler

    def test_document_validates(self):
        from repro.bcp.arena import ArenaPropagator
        from repro.core.literals import encode

        engine = ArenaPropagator(2)
        engine.add_clause([encode(1), encode(2)],
                          propagate_units=False)
        doc = mem_document(self._sampler(), run={"id": "r1"},
                           arena=arena_mem_stats(engine))
        assert doc["schema"] == "repro.obs.mem/v1"
        assert validate_mem(doc) == []
        assert len(doc["samples"]) == 2

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "mem.json"
        write_mem_json(path, self._sampler(), run={"id": "r1"})
        loaded = json.loads(path.read_text())
        assert validate_mem(loaded) == []

    def test_validator_rejects_garbage(self):
        assert validate_mem([]) != []
        assert validate_mem({"schema": "nope"}) != []
        doc = mem_document(self._sampler(), run={"id": "r1"})
        doc["summary"]["rss_bytes"] = -5
        assert any("rss_bytes" in p for p in validate_mem(doc))
        doc = mem_document(self._sampler(), run={"id": "r1"})
        doc["summary"]["source"] = "martian"
        assert any("source" in p for p in validate_mem(doc))


# -- live view -------------------------------------------------------------

class TestLiveMemStaleness:
    def _doc(self, mem, updated=1000.0):
        return {"run": "r1", "pid": 1, "state": "running",
                "updated": updated, "done": 1, "total": 2,
                "mem": mem}

    def test_fresh_mem_stays_running(self):
        table = format_top_table(
            [self._doc({"rss_bytes": 10, "peak_rss_bytes": 20,
                        "updated": 999.0})],
            now=1000.0, stale_after=10.0)
        assert "running" in table
        assert "stale" not in table

    def test_silent_sampler_marks_stale(self):
        """Progress still beats (updated is fresh) but the memory
        sampler went quiet long ago: the run shows as stale."""
        table = format_top_table(
            [self._doc({"rss_bytes": 10, "peak_rss_bytes": 20,
                        "updated": 900.0})],
            now=1000.0, stale_after=10.0)
        assert "stale" in table

    def test_no_mem_section_is_not_stale(self):
        table = format_top_table([self._doc(None)],
                                 now=1000.0, stale_after=10.0)
        assert "running" in table


# -- timeline memory lane --------------------------------------------------

class TestTimelineMemory:
    def _trace_with_samples(self):
        clock = FakeClock()
        tracer = Tracer(run_id="main", clock=clock, epoch=0.0)
        sampler = MemSampler(tracer=tracer, wall=clock,
                             reader=make_reader(rss=100, peak=150))
        with tracer.span("verify"):
            clock.now = 1.0
            sampler.sample()
            clock.now = 2.0
            sampler.sample()
            clock.now = 3.0
        return tracer.events

    def test_memory_section_built(self):
        doc = build_timeline(self._trace_with_samples())
        memory = doc["memory"]
        assert memory is not None
        assert [s["ts"] for s in memory["samples"]] == [1.0, 2.0]
        assert memory["peak_rss_bytes"] == 150

    def test_no_samples_no_section(self):
        clock = FakeClock()
        tracer = Tracer(run_id="main", clock=clock, epoch=0.0)
        with tracer.span("verify"):
            clock.now = 1.0
        doc = build_timeline(tracer.events)
        assert doc["memory"] is None
        # And the renderer skips the lane without complaint.
        assert "memory" not in render_timeline_text(doc)

    def test_shard_peaks_fold_into_run_peak(self):
        """Per-shard peak_rss end-attrs from pool workers raise the
        run-wide peak even when they exceed every parent sample."""
        clock = FakeClock()
        tracer = Tracer(run_id="main", clock=clock, epoch=0.0)
        sampler = MemSampler(tracer=tracer, wall=clock,
                             reader=make_reader(rss=100, peak=150))
        with tracer.span("verify"):
            with tracer.span("pool"):
                worker = Tracer(run_id="w", clock=clock, epoch=0.0)
                clock.now = 0.5
                with worker.span("shard", lo=0, hi=4, pid=7):
                    clock.now = 1.0
                worker.events[-1]["attrs"].update(
                    checks=4, wall=0.5, peak_rss=9000)
                tracer.replay(worker.events)
                clock.now = 1.5
                sampler.sample()
            clock.now = 2.0
        doc = build_timeline(tracer.events)
        assert doc["memory"]["peak_rss_bytes"] == 9000
        text = render_timeline_text(doc)
        assert "memory" in text
        assert "rss=" in text


# -- the regression gate ---------------------------------------------------

class TestPeakRssGate:
    def _fingerprint(self, peak):
        record = {"outcome": "correct", "wall_time": 1.0}
        if peak is not None:
            record["memory"] = {"peak_rss_bytes": peak}
        return record

    def test_growth_over_threshold_violates(self):
        violations = check_regression(
            self._fingerprint(100_000_000),
            self._fingerprint(140_000_000),
            max_peak_rss_growth_pct=25.0)
        assert len(violations) == 1
        assert "peak RSS regressed" in violations[0]

    def test_growth_under_threshold_passes(self):
        assert check_regression(
            self._fingerprint(100_000_000),
            self._fingerprint(110_000_000),
            max_peak_rss_growth_pct=25.0) == []

    @pytest.mark.parametrize("baseline_peak,current_peak",
                             [(None, 140_000_000),
                              (100_000_000, None),
                              (None, None)])
    def test_missing_memory_skips_gate(self, baseline_peak,
                                       current_peak):
        """An unmeasured run cannot be gated — either side missing
        the memory section skips the check instead of failing it."""
        assert check_regression(
            self._fingerprint(baseline_peak),
            self._fingerprint(current_peak),
            max_peak_rss_growth_pct=25.0) == []

    def test_gate_off_by_default(self):
        assert check_regression(
            self._fingerprint(100), self._fingerprint(100_000)) == []
