"""Unit tests for the numpy-vectorized BCP kernel.

The engine-parity suite (tests/test_engine_parity.py) pins the vector
engine's *verdicts* against the other engines; this module tests the
kernel's own mechanics: masking instead of mutation (tombstones,
``retire_above``, explicit ceilings), the frontier-batched round
logic on both the sparse and the dense extraction path, snapshot
backtracking, the shared-memory view, and the ``auto``-ladder /
``kernel_selected`` plumbing that selects the kernel.

Everything except the fallback tests requires numpy; the fallback
tests simulate its absence by blanking the registry entry, so they run
(and mean the same thing) on both CI legs.
"""

import pytest

import repro.bcp as bcp
from repro.bcp import ENGINES, engine_name, numpy_available, resolve_engine
from repro.bcp.arena import ArenaPropagator, ClauseArena, build_arena
from repro.bcp.engine import FALSE, TRUE, UNDEF
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.verify.checker import ProofChecker
from repro.verify.verification import verify_proof_v1

np = pytest.importorskip("numpy")
from repro.bcp.vector import VectorPropagator  # noqa: E402


def make_engine(clauses, num_vars=0):
    engine = VectorPropagator(num_vars)
    cids = [engine.add_clause([encode(lit) for lit in clause],
                              propagate_units=False)
            for clause in clauses]
    return engine, cids


def assume(engine, lit):
    # PropagatorBase.assume opens the decision level itself.
    assert engine.assume(encode(lit))


class TestMasking:
    """Removed/retired/above-ceiling clauses neither propagate nor
    conflict — the kernel masks their slack rather than mutating the
    (possibly read-only, shared) arena."""

    def test_tombstoned_clause_never_propagates(self):
        engine, cids = make_engine([[1, 2]])
        assume(engine, -1)
        assert engine.propagate() is None
        assert engine.value(encode(2)) == TRUE
        engine.backtrack(0)
        engine.remove_clause(cids[0])
        assume(engine, -1)
        assert engine.propagate() is None
        assert engine.value(encode(2)) == UNDEF

    def test_tombstoned_clause_never_conflicts(self):
        engine, cids = make_engine([[1, 2], [1, -2]])
        engine.remove_clause(cids[1])
        assume(engine, -1)
        # Live (1 2) forces 2; dead (1 -2) must not report the
        # resulting "conflict".
        assert engine.propagate() is None
        assert engine.value(encode(2)) == TRUE

    def test_retire_above_masks_high_cids(self):
        engine, _ = make_engine([[1, 2], [1, -2]])
        engine.retire_above(1)
        assume(engine, -1)
        assert engine.propagate() is None
        assert engine.value(encode(2)) == TRUE
        # Un-retired, the same assumption is a conflict.
        engine2, _ = make_engine([[1, 2], [1, -2]])
        assume(engine2, -1)
        assert engine2.propagate() is not None

    def test_explicit_ceiling_is_per_call(self):
        """``propagate(ceiling)`` masks without retiring: a later call
        with a higher ceiling sees the clauses again (the rebuild-mode
        checker's pattern, exercising the staleness watermark)."""
        engine, _ = make_engine([[1, 2], [1, -2]])
        assume(engine, -1)
        assert engine.propagate(1) is None      # (1 -2) out of play
        assert engine.value(encode(2)) == TRUE
        engine.backtrack(0)
        assume(engine, -1)
        assert engine.propagate(2) is not None  # now it conflicts

    def test_retired_clause_purged_from_occurrences(self):
        engine, _ = make_engine([[1, 2], [1, -2], [1, 3]])
        before = engine.counters.purged
        engine.retire_above(1)
        assume(engine, -1)
        engine.propagate()
        assert engine.counters.purged > before


class TestFrontierRounds:
    """The hot loop processes the whole trail delta per round."""

    def test_implication_chain_propagates_to_fixpoint(self):
        n = 30
        chain = [[-k, k + 1] for k in range(1, n)]
        engine, _ = make_engine(chain)
        assume(engine, 1)
        assert engine.propagate() is None
        for var in range(1, n + 1):
            assert engine.value(encode(var)) == TRUE

    def test_dense_round_fanout(self):
        """One falsified literal hitting many clauses at once takes the
        dense bincount path; every consequence must land."""
        fanout = [[1, k] for k in range(2, 120)]
        engine, _ = make_engine(fanout)
        assume(engine, -1)
        assert engine.propagate() is None
        for var in range(2, 120):
            assert engine.value(encode(var)) == TRUE

    def test_sparse_round_small_frontier(self):
        """A tiny frontier over a large clause set takes the sparse
        ``subtract.at`` path; same fixpoint."""
        padding = [[10 + k, 200 + k] for k in range(150)]
        chain = [[-1, 2], [-2, 3], [-3, 4]]
        engine, _ = make_engine(padding + chain)
        assume(engine, 1)
        assert engine.propagate() is None
        assert engine.value(encode(4)) == TRUE
        for k in range(150):
            assert engine.value(encode(10 + k)) == UNDEF

    def test_conflict_reported_with_clause_id(self):
        engine, cids = make_engine([[1, 2], [-2, 3], [-2, -3]])
        assume(engine, -1)
        confl = engine.propagate()
        assert confl in (cids[1], cids[2])
        assert engine.value(encode(2)) == TRUE

    def test_counters_move(self):
        engine, _ = make_engine([[1, 2], [-2, 3]])
        assume(engine, -1)
        engine.propagate()
        counters = engine.counters
        assert counters.assignments >= 2
        assert counters.clause_visits > 0


class TestSnapshots:
    """Backtracking restores the per-level slack snapshot (or recounts
    when the snapshot was invalidated) — retraction must be exact."""

    def test_backtrack_restores_clean_state(self):
        engine, _ = make_engine([[1, 2], [-2, 3]])
        assume(engine, -1)
        assert engine.propagate() is None
        engine.backtrack(0)
        for var in (1, 2, 3):
            assert engine.value(encode(var)) == UNDEF
        # The same propagation must replay identically.
        assume(engine, -1)
        assert engine.propagate() is None
        assert engine.value(encode(3)) == TRUE

    def test_mid_level_backtrack(self):
        engine, _ = make_engine([[1, 2], [-3, 4]])
        assume(engine, -1)
        assert engine.propagate() is None
        assume(engine, 3)
        assert engine.propagate() is None
        assert engine.value(encode(4)) == TRUE
        engine.backtrack(1)
        assert engine.value(encode(2)) == TRUE   # level-1 state intact
        assert engine.value(encode(4)) == UNDEF
        assume(engine, -4)
        assert engine.propagate() is None
        assert engine.value(encode(3)) == FALSE  # (-3 4) with 4 false

    def test_clause_added_mid_search_invalidates_snapshot(self):
        engine, _ = make_engine([[1, 2]])
        assume(engine, -1)
        assert engine.propagate() is None
        engine.add_clause([encode(-2), encode(3)],
                          propagate_units=False)
        # A clause that is already unit under the standing assignment
        # fires on a trail rescan (the incremental checker's
        # ``qhead = 0`` pattern) — this exercises the counted-region
        # candidate scan, which must not double-count the trail.
        engine.qhead = 0
        assert engine.propagate() is None
        assert engine.value(encode(3)) == TRUE
        engine.backtrack(0)
        assume(engine, -1)
        assert engine.propagate() is None
        assert engine.value(encode(3)) == TRUE


PAPER_F = CnfFormula([[1, 2], [1, -2], [-1, 3], [-1, -3], [4, 5]])
PAPER_PROOF = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)


class TestSharedMemoryView:
    def test_checker_over_attached_arena(self):
        """A vector engine built over a shared-memory-attached arena
        (numpy views over the same block, zero-copy) reaches the same
        verdict as the local engines."""
        arena, num_input = build_arena(PAPER_F, PAPER_PROOF)
        handle = arena.to_shared_memory()
        try:
            attached = ClauseArena.from_shared_memory(handle)
            checker = ProofChecker.from_arena(
                attached, num_input, engine_cls="vector")
            assert isinstance(checker.engine, VectorPropagator)
            for index in (1, 0):
                assert checker.check_clause(index).conflict
                checker.reset()
        finally:
            arena.release_shared(unlink=True)

    def test_from_arena_default_is_arena_engine(self):
        arena, num_input = build_arena(PAPER_F, PAPER_PROOF)
        checker = ProofChecker.from_arena(arena, num_input)
        assert isinstance(checker.engine, ArenaPropagator)

    def test_from_arena_rejects_non_arena_backed(self):
        arena, num_input = build_arena(PAPER_F, PAPER_PROOF)
        with pytest.raises(ValueError, match="arena-backed"):
            ProofChecker.from_arena(arena, num_input,
                                    engine_cls="watched")


class TestSelection:
    def test_registry_and_classvars(self):
        assert numpy_available()
        assert ENGINES["vector"] is VectorPropagator
        assert VectorPropagator.kernel == "numpy"
        assert VectorPropagator.arena_backed
        assert engine_name(VectorPropagator) == "vector"

    def test_auto_resolves_to_vector(self):
        assert resolve_engine("auto") is VectorPropagator

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(bcp, "VectorPropagator", None)
        assert resolve_engine("auto") is ArenaPropagator

    def test_vector_errors_helpfully_without_numpy(self, monkeypatch):
        monkeypatch.setattr(bcp, "VectorPropagator", None)
        monkeypatch.delitem(bcp.ENGINES, "vector", raising=False)
        with pytest.raises(ValueError, match=r"repro\[fast\]"):
            resolve_engine("vector")

    def test_kernel_selected_event(self):
        from repro.obs.context import Obs
        from repro.obs.spans import Tracer

        obs = Obs(tracer=Tracer())
        report = verify_proof_v1(PAPER_F, PAPER_PROOF, "auto", obs=obs)
        assert report.ok
        assert report.engine == "vector"
        events = [e for e in obs.tracer.events
                  if e["type"] == "event"
                  and e["name"] == "kernel_selected"]
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["requested"] == "auto"
        assert attrs["engine"] == "vector"
        assert attrs["kernel"] == "numpy"
        assert attrs["mode"] == "rebuild"
        assert attrs["order"] == "backward"
        assert attrs["reason"].startswith("auto:")

    def test_fingerprint_kernel_field(self):
        from repro.obs.insight.history import fingerprint

        vector = verify_proof_v1(PAPER_F, PAPER_PROOF, "vector")
        watched = verify_proof_v1(PAPER_F, PAPER_PROOF, "watched")
        assert fingerprint(vector, run_id="r1",
                           command="verify")["kernel"] == "numpy"
        assert fingerprint(watched, run_id="r2",
                           command="verify")["kernel"] == "python"
