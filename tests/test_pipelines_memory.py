"""Tests for the load-store (DLX-style) pipeline substrate."""

import random

import pytest

from repro.core.exceptions import ModelError
from repro.pipelines.memory import (
    OP_LOAD,
    OP_STORE,
    LoadStoreSpec,
    build_ls_pipeline_circuit,
    build_ls_spec_circuit,
    dlx_instance,
    execute_ls_program,
)
from repro.solver.cdcl import solve


def assignment_for(spec, regs, mem, program):
    assignment = {}
    for j in range(spec.num_regs):
        for bit in range(spec.width):
            assignment[f"r{j}[{bit}]"] = bool((regs[j] >> bit) & 1)
    for k in range(spec.num_mem):
        for bit in range(spec.width):
            assignment[f"m{k}[{bit}]"] = bool((mem[k] >> bit) & 1)
    for i, (op, s1, s2, d) in enumerate(program):
        for bit in range(3):
            assignment[f"op{i}[{bit}]"] = bool((op >> bit) & 1)
        for bit in range(spec.reg_bits):
            assignment[f"s1_{i}[{bit}]"] = bool((s1 >> bit) & 1)
            assignment[f"s2_{i}[{bit}]"] = bool((s2 >> bit) & 1)
            assignment[f"d{i}[{bit}]"] = bool((d >> bit) & 1)
    return assignment


def read_state(spec, outputs):
    regs = [sum(outputs[f"out_r{j}[{bit}]"] << bit
                for bit in range(spec.width))
            for j in range(spec.num_regs)]
    mem = [sum(outputs[f"out_m{k}[{bit}]"] << bit
               for bit in range(spec.width))
           for k in range(spec.num_mem)]
    return regs, mem


class TestReferenceSemantics:
    def test_load(self):
        spec = LoadStoreSpec(num_instrs=1)
        regs, mem = execute_ls_program(
            spec, [1, 0], [2, 3], [(OP_LOAD, 0, 0, 1)])
        assert regs == [1, 3]  # R1 <- M[R0 & 1] = M[1] = 3

    def test_store(self):
        spec = LoadStoreSpec(num_instrs=1)
        regs, mem = execute_ls_program(
            spec, [0, 2], [1, 1], [(OP_STORE, 0, 1, 0)])
        assert mem == [2, 1]  # M[R0] <- R1

    def test_nop(self):
        spec = LoadStoreSpec(num_instrs=1)
        regs, mem = execute_ls_program(spec, [1, 2], [3, 0],
                                       [(6, 0, 1, 0)])
        assert regs == [1, 2] and mem == [3, 0]

    def test_store_then_load_roundtrip(self):
        spec = LoadStoreSpec(num_instrs=2)
        regs, mem = execute_ls_program(
            spec, [0, 3], [0, 0],
            [(OP_STORE, 0, 1, 0),   # M[0] <- 3
             (OP_LOAD, 0, 0, 0)])   # R0 <- M[0]
        assert regs[0] == 3

    def test_validation(self):
        with pytest.raises(ModelError):
            LoadStoreSpec(num_instrs=1, num_mem=3)
        with pytest.raises(ModelError):
            LoadStoreSpec(num_instrs=1, width=1, num_mem=4)


@pytest.mark.parametrize("depth", [1, 2, 3])
class TestCircuitsMatchReference:
    def test_random_programs(self, depth):
        spec = LoadStoreSpec(num_instrs=3, num_regs=2, width=2,
                             num_mem=2)
        spec_circuit = build_ls_spec_circuit(spec)
        impl_circuit = build_ls_pipeline_circuit(spec, depth)
        rng = random.Random(depth)
        for _ in range(40):
            regs = [rng.randrange(4) for _ in range(2)]
            mem = [rng.randrange(4) for _ in range(2)]
            program = [(rng.randrange(8), rng.randrange(2),
                        rng.randrange(2), rng.randrange(2))
                       for _ in range(3)]
            expected = execute_ls_program(spec, regs, mem, program)
            assignment = assignment_for(spec, regs, mem, program)
            for circuit in (spec_circuit, impl_circuit):
                outputs = circuit.output_values(assignment)
                assert read_state(spec, outputs) == expected, (
                    program, regs, mem)


class TestCorrespondence:
    def test_small_instance_unsat(self):
        formula = dlx_instance(2, 3)
        result = solve(formula)
        assert result.is_unsat

    def test_instance_shape(self):
        formula = dlx_instance(2, 3)
        assert formula.num_vars > 100
        assert formula.num_clauses > 300

    def test_depth_validated(self):
        spec = LoadStoreSpec(num_instrs=2)
        with pytest.raises(ModelError):
            build_ls_pipeline_circuit(spec, 0)
