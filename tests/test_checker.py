"""Unit tests for the ProofChecker and verifier-side conflict analysis."""

from repro.bcp.watched import WatchedPropagator
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.verify.checker import ProofChecker
from repro.verify.conflict_analysis import mark_responsible


class TestProofChecker:
    def test_checks_are_independent(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        checker = ProofChecker(formula, proof)
        for _ in range(3):  # repeated checks must not interfere
            outcome = checker.check_clause(0)
            checker.reset()
            assert outcome.conflict
        assert not checker.engine.trail  # level 0 stays empty

    def test_ceiling_excludes_later_proof_clauses(self):
        # (1) is *not* implied by F alone — only by F plus the later
        # proof clause; checking index 0 must therefore fail.
        formula = CnfFormula([[1, 2, 3]])
        proof = ConflictClauseProof([(1,), (), ], ENDING_EMPTY)
        checker = ProofChecker(formula, proof)
        assert not checker.check_clause(0).conflict
        checker.reset()

    def test_unit_clauses_participate(self):
        # F has units (1) and (-1): any clause check conflicts.
        formula = CnfFormula([[1], [-1]])
        proof = ConflictClauseProof([()], ENDING_EMPTY)
        checker = ProofChecker(formula, proof)
        outcome = checker.check_clause(0)
        assert outcome.conflict
        assert outcome.confl_cid is not None
        checker.reset()

    def test_tautology_reports_no_responsible_clause(self):
        formula = CnfFormula([[1], [-1]])
        proof = ConflictClauseProof([(2, -2), ()], ENDING_EMPTY)
        checker = ProofChecker(formula, proof)
        outcome = checker.check_clause(0)
        assert outcome.conflict
        assert outcome.confl_cid is None
        checker.reset()

    def test_proof_variable_beyond_formula(self):
        formula = CnfFormula([[1], [-1]])
        proof = ConflictClauseProof([(9, -9), ()], ENDING_EMPTY)
        checker = ProofChecker(formula, proof)
        assert checker.check_clause(1).conflict

    def test_cid_mapping(self):
        formula = CnfFormula([[1], [-1]])
        proof = ConflictClauseProof([()], ENDING_EMPTY)
        checker = ProofChecker(formula, proof)
        assert checker.cid_of_proof_clause(0) == 2


class TestMarkResponsible:
    def build(self, clauses):
        engine = WatchedPropagator(10)
        for clause in clauses:
            engine.add_clause([encode(lit) for lit in clause],
                              propagate_units=False)
        return engine

    def test_marks_conflict_and_reasons(self):
        engine = self.build([[-1, 2], [-2, 3], [-3, -1]])
        engine.new_level()
        engine.enqueue(encode(1), None)      # assumption
        confl = engine.propagate()
        assert confl is not None
        marked = set()
        mark_responsible(engine, confl, marked)
        assert marked == {0, 1, 2}

    def test_assumptions_terminate_walk(self):
        engine = self.build([[-1, -2]])
        engine.new_level()
        engine.enqueue(encode(1), None)
        engine.enqueue(encode(2), None)
        confl = engine.propagate()
        assert confl == 0
        marked = set()
        mark_responsible(engine, confl, marked)
        assert marked == {0}  # nothing else is responsible

    def test_partial_support_marked(self):
        # Two independent chains; only the conflicting one is marked.
        engine = self.build([[-1, 2], [-5, 6], [-2, -1]])
        engine.new_level()
        engine.enqueue(encode(1), None)
        engine.enqueue(encode(5), None)
        confl = engine.propagate()
        marked = set()
        mark_responsible(engine, confl, marked)
        assert 1 not in marked  # the (−5 6) clause played no part

    def test_accumulates_across_calls(self):
        engine = self.build([[-1, 2], [-2, -1], [-5, 6], [-6, -5]])
        marked = set()
        engine.new_level()
        engine.enqueue(encode(1), None)
        mark_responsible(engine, engine.propagate(), marked)
        engine.backtrack(0)
        engine.new_level()
        engine.enqueue(encode(5), None)
        mark_responsible(engine, engine.propagate(), marked)
        assert marked == {0, 1, 2, 3}


class TestCheckerStressScenarios:
    def test_many_sequential_checks_stay_clean(self):
        """The engine state must be pristine after hundreds of checks."""
        from repro.benchgen.php import pigeonhole
        from repro.proofs.conflict_clause import ConflictClauseProof
        from repro.solver.cdcl import solve

        formula = pigeonhole(4)
        result = solve(formula)
        proof = ConflictClauseProof.from_log(result.log)
        checker = ProofChecker(formula, proof)
        for _ in range(3):  # repeated full sweeps over the same engine
            for index in range(len(proof) - 1, -1, -1):
                outcome = checker.check_clause(index)
                checker.reset()
                assert outcome.conflict
            assert not checker.engine.trail
            assert checker.engine.decision_level == 0
