"""Tests for tracing spans, JSONL round-trips, progress, exporters."""

import io
import json
import re

from repro.obs.export import escape_label_value, sanitize_metric_name
from repro.obs import (
    METRICS_SCHEMA,
    MetricsRegistry,
    ProgressReporter,
    Tracer,
    deterministic_view,
    metrics_document,
    prometheus_text,
    read_jsonl,
    rebase_epoch,
    stats_footer,
    validate_metrics,
    validate_trace,
    worker_tracer,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTracer:
    def test_span_nesting_and_durations(self):
        clock = FakeClock()
        tracer = Tracer(run_id="r1", clock=clock)
        with tracer.span("verify"):
            clock.advance(1.0)
            with tracer.span("check", index=3):
                clock.advance(0.5)
        begin_verify, begin_check, end_check, end_verify = tracer.events
        assert begin_verify["parent"] is None
        assert begin_check["parent"] == begin_verify["span"]
        assert begin_check["attrs"] == {"index": 3}
        assert end_check["dur"] == 0.5
        assert end_verify["dur"] == 1.5

    def test_end_attrs_flow_through_yield(self):
        tracer = Tracer(run_id="r1")
        with tracer.span("shard") as end_attrs:
            end_attrs["checks"] = 42
        assert tracer.events[-1]["attrs"] == {"checks": 42}

    def test_instant_event_attaches_to_current_span(self):
        tracer = Tracer(run_id="r1")
        with tracer.span("verify"):
            tracer.event("budget_exhausted", reason="timeout")
        event = tracer.events[1]
        assert event["type"] == "event"
        assert event["span"] == tracer.events[0]["span"]
        assert event["attrs"] == {"reason": "timeout"}

    def test_replay_renumbers_and_tags(self):
        """Worker events adopt the parent's run id, fresh span ids,
        and the folded-in shard attribute."""
        clock = FakeClock()
        parent = Tracer(run_id="parent", clock=clock)
        worker = Tracer(run_id="worker", clock=clock,
                        epoch=parent.epoch)
        with worker.span("shard", lo=0, hi=5):
            clock.advance(0.1)
        with parent.span("pool"):
            parent.replay(worker.events, shard=[0, 5])
        replayed = [e for e in parent.events if e["name"] == "shard"]
        assert len(replayed) == 2
        for event in replayed:
            assert event["run"] == "parent"
            assert event["attrs"]["shard"] == [0, 5]
        # reparented under the parent's current span
        assert replayed[0]["parent"] == parent.events[0]["span"]

    def test_jsonl_round_trip_validates(self):
        clock = FakeClock()
        tracer = Tracer(run_id="r1", clock=clock)
        with tracer.span("verify", mode="incremental"):
            clock.advance(0.2)
            tracer.event("jobs_resolved", jobs=2)
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        events = read_jsonl(io.StringIO(buffer.getvalue()))
        assert validate_trace(events) == []
        assert events[0]["schema"] == "repro.obs.trace/v1"
        assert [e["type"] for e in events[1:]] \
            == ["begin", "event", "end"]

    def test_write_jsonl_sorts_interleaved_replays(self):
        """Shard results arrive in completion order; the serialized
        log must still be time-ordered."""
        clock = FakeClock()
        parent = Tracer(run_id="p", clock=clock)
        early = Tracer(run_id="w1", clock=clock, epoch=parent.epoch)
        clock.advance(1.0)
        late = Tracer(run_id="w2", clock=clock, epoch=parent.epoch)
        with late.span("shard"):
            clock.advance(0.1)
        clock.now = 0.0
        with early.span("shard"):
            clock.advance(0.1)
        clock.now = 2.0
        parent.replay(late.events)
        parent.replay(early.events)  # out of time order
        buffer = io.StringIO()
        parent.write_jsonl(buffer)
        events = read_jsonl(io.StringIO(buffer.getvalue()))
        assert validate_trace(events) == []

    def test_validator_flags_problems(self):
        assert validate_trace([]) != []
        bad = [{"ts": 0.0, "run": "r", "type": "header",
                "schema": "repro.obs.trace/v1", "name": "trace",
                "attrs": {}},
               {"ts": 1.0, "run": "r", "type": "begin", "span": 1,
                "parent": None, "name": "verify", "attrs": {}}]
        problems = validate_trace(bad)
        assert any("never ended" in p for p in problems)


class TestProgress:
    def test_throttles_then_finishes(self):
        clock = FakeClock()
        stream = io.StringIO()
        progress = ProgressReporter(10, stream=stream, interval=1.0,
                                    clock=clock)
        progress.update(1)
        progress.update(2)          # throttled: same instant
        clock.advance(1.5)
        progress.update(5)
        progress.finish(10)         # never throttled
        lines = stream.getvalue().splitlines()
        assert progress.lines_emitted == 3
        assert lines[0] == "c progress: 1/10 checks, 0.0s elapsed"
        assert "eta" in lines[1]
        assert lines[-1].startswith("c progress: 10/10 checks")
        assert "eta" not in lines[-1]

    def test_eta_is_linear_extrapolation(self):
        clock = FakeClock()
        stream = io.StringIO()
        progress = ProgressReporter(100, stream=stream, interval=0,
                                    clock=clock)
        clock.advance(2.0)
        progress.update(50)
        assert stream.getvalue().rstrip().endswith("eta 2s")


class TestExport:
    def _document(self):
        registry = MetricsRegistry()
        registry.counter("repro_verify_checks_total", help="checks").inc(7)
        registry.gauge("repro_verify_jobs").set(1)
        registry.histogram("repro_check_seconds",
                           buckets=(0.1, 1.0)).observe(0.05)
        return metrics_document(
            registry, run={"id": "r1", "command": "verify"},
            stats={"total_time": 0.5, "checks": 7})

    def test_document_validates(self):
        doc = self._document()
        assert doc["schema"] == METRICS_SCHEMA
        assert validate_metrics(doc) == []

    def test_document_json_round_trip(self):
        doc = self._document()
        again = json.loads(json.dumps(doc))
        assert validate_metrics(again) == []
        assert again == doc

    def test_validator_flags_problems(self):
        doc = self._document()
        doc["metrics"]["repro_verify_checks_total"]["value"] = -1
        assert any("non-negative" in p for p in validate_metrics(doc))
        assert validate_metrics({"schema": "nope"}) != []

    def test_prometheus_text_format(self):
        text = prometheus_text(MetricsRegistry())
        assert text == "\n"
        registry = MetricsRegistry()
        registry.counter("checks_total", help="number of checks").inc(3)
        registry.histogram("seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = prometheus_text(registry)
        assert "# HELP checks_total number of checks" in text
        assert "# TYPE checks_total counter" in text
        assert "checks_total 3" in text
        assert 'seconds_bucket{le="0.1"} 0' in text
        assert 'seconds_bucket{le="1"} 1' in text
        assert 'seconds_bucket{le="+Inf"} 1' in text
        assert "seconds_count 1" in text

    def test_stats_footer_lines(self):
        lines = stats_footer(
            {"total_time": 2.0, "phase_times": {"setup": 0.5,
                                                "checks": 1.5},
             "checks": 100, "props": 5000,
             "slowest_checks": [[17, 0.25]]},
            {"assignments": 10})
        assert lines[0] == "c stats: total=2.000s " \
            "(setup=0.500s checks=1.500s)"
        assert "checks=100 props=5000 checks_per_sec=50" in lines[1]
        assert "#17=250.0ms" in lines[2]
        assert lines[3] == "c stats: bcp assignments=10"
        assert stats_footer(None, None) == []


class TestDeterministicView:
    def test_strips_time_and_run(self):
        registry = MetricsRegistry()
        registry.counter("repro_verify_checks_total").inc(5)
        registry.histogram("repro_check_seconds").observe(0.1)
        registry.gauge("repro_verify_jobs").set(1)
        doc = metrics_document(registry, run={"id": "r1"},
                               stats={"total_time": 1.0})
        view = deterministic_view(doc)
        assert "run" not in view
        assert "stats" not in view
        assert "repro_check_seconds" not in view["metrics"]
        assert "repro_verify_checks_total" in view["metrics"]
        # sequential runs keep the scheduling-dependent metrics
        registry.counter("repro_bcp_assignments_total").inc(9)
        view = deterministic_view(metrics_document(registry,
                                                   run={"id": "r2"}))
        assert "repro_bcp_assignments_total" in view["metrics"]

    def test_parallel_strips_scheduling_dependent(self):
        registry = MetricsRegistry()
        registry.gauge("repro_verify_jobs").set(4)
        registry.counter("repro_bcp_assignments_total").inc(9)
        registry.counter("repro_verify_checks_total").inc(5)
        registry.histogram("repro_check_work",
                           buckets=(10, 100)).observe(50)
        view = deterministic_view(metrics_document(registry,
                                                   run={"id": "r1"}))
        assert "repro_bcp_assignments_total" not in view["metrics"]
        assert "repro_check_work" not in view["metrics"]
        assert "repro_verify_checks_total" in view["metrics"]


class TestTraceContext:
    def test_every_event_carries_the_trace_id(self):
        tracer = Tracer(run_id="r1", trace_id="f" * 32)
        with tracer.span("verify"):
            tracer.event("beat")
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        records = read_jsonl(io.StringIO(buf.getvalue()))
        assert records[0]["type"] == "header"
        assert all(r["trace"] == "f" * 32 for r in records)

    def test_trace_id_is_generated_and_unique(self):
        a, b = Tracer(run_id="r1"), Tracer(run_id="r2")
        assert len(a.trace_id) == 32
        assert int(a.trace_id, 16) >= 0
        assert a.trace_id != b.trace_id

    def test_replay_overrides_worker_trace_id(self):
        parent = Tracer(run_id="p", trace_id="a" * 32)
        worker = Tracer(run_id="w", trace_id="b" * 32)
        with worker.span("shard", lo=0, hi=1):
            pass
        parent.replay(worker.events, shard=[0, 1])
        assert all(e["trace"] == "a" * 32 for e in parent.events)

    def test_validate_trace_rejects_mixed_trace_ids(self):
        tracer = Tracer(run_id="r1")
        with tracer.span("verify"):
            pass
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        events = read_jsonl(io.StringIO(buf.getvalue()))
        events[-1]["trace"] = "0" * 32
        assert any("trace" in p for p in validate_trace(events))
        # Legacy traces without trace ids stay valid.
        for event in events:
            del event["trace"]
        assert validate_trace(events) == []


class TestRebaseEpoch:
    def test_shared_monotonic_clock_reuses_parent_epoch(self):
        """Fork (or any shared system clock): drift is ~0, so the
        parent epoch is reused verbatim."""
        clock = FakeClock()
        wall = FakeClock()
        wall.now = 1000.0
        clock.now = 5.0
        epoch, epoch_wall = 2.0, 997.0  # anchored 3s ago
        assert rebase_epoch(epoch, epoch_wall, clock=clock,
                            wall=wall) == 2.0

    def test_unrelated_clock_rebases_onto_wall_anchor(self):
        """Spawn onto a restarted monotonic clock: the local epoch is
        derived from the wall anchor so worker timestamps land on the
        parent axis."""
        clock = FakeClock()
        wall = FakeClock()
        wall.now = 1000.0
        clock.now = 0.25  # fresh clock, parent's epoch means nothing
        epoch, epoch_wall = 500.0, 997.0
        rebased = rebase_epoch(epoch, epoch_wall, clock=clock,
                               wall=wall)
        assert rebased == 0.25 - 3.0
        # A timestamp taken now lands 3s after the parent anchor.
        assert clock.now - rebased == 3.0

    def test_none_inputs_degrade_gracefully(self):
        assert rebase_epoch(None, None) is None
        assert rebase_epoch(None, 123.0) is None
        assert rebase_epoch(7.0, None) == 7.0

    def test_worker_tracer_stamps_parent_identity(self):
        clock = FakeClock()
        wall = FakeClock()
        wall.now = 1000.0
        parent = Tracer(run_id="p", clock=clock, wall=wall)
        clock.now = 2.0
        wall.now = 1002.0
        worker = worker_tracer(run_id=parent.run_id,
                               epoch=parent.epoch,
                               epoch_wall=parent.epoch_wall,
                               trace_id=parent.trace_id,
                               clock=clock, wall=wall)
        assert worker.run_id == "p"
        assert worker.trace_id == parent.trace_id
        assert worker.epoch == parent.epoch
        with worker.span("shard", lo=0, hi=1):
            clock.now = 3.0
        assert worker.events[0]["ts"] == 2.0  # parent axis


class TestPrometheusHardening:
    def test_names_are_sanitized(self):
        assert sanitize_metric_name("repro.verify-rate") == \
            "repro_verify_rate"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"
        assert sanitize_metric_name("ok_name:v1") == "ok_name:v1"
        assert sanitize_metric_name("émigré") == "_migr_"

    def test_counters_get_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("repro.checks").inc(2)
        registry.counter("repro_props_total").inc(3)
        text = prometheus_text(registry)
        assert "repro_checks_total 2" in text
        # An existing suffix is not doubled.
        assert "repro_props_total 3" in text
        assert "repro_props_total_total" not in text

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total",
                         help="multi\nline \\ help").inc(1)
        text = prometheus_text(registry)
        assert "# HELP c_total multi\\nline \\\\ help" in text
        assert "multi\nline" not in text

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == \
            'a\\"b\\\\c\\nd'

    def test_round_trip_exposition_stays_parseable(self):
        """Every emitted line must match the exposition grammar even
        with hostile metric names and help text."""
        registry = MetricsRegistry()
        registry.counter("weird.name-1", help="h\ne\\lp").inc(1)
        registry.gauge("2gauge").set(4)
        registry.histogram("histo gram",
                           buckets=(0.5,)).observe(0.1)
        text = prometheus_text(registry)
        name_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"\})? '
            r"-?[0-9.eE+inf-]+$")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert "\n" not in line[1:]
                continue
            assert name_re.match(line), line
