"""Tests for Proof_verification2: marking, skipping, core extraction."""

import random

import pytest

from repro.bcp.counting import CountingPropagator
from repro.benchgen.php import pigeonhole
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.solver.dpll import dpll_solve
from repro.verify.verification import verify_proof_v1, verify_proof_v2

from tests.conftest import random_formula


def proof_of(formula, **solver_kwargs):
    result = solve(formula, **solver_kwargs)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


class TestBasic:
    def test_accepts_correct_proof(self, tiny_unsat):
        report = verify_proof_v2(tiny_unsat, proof_of(tiny_unsat))
        assert report.ok
        assert report.core is not None

    def test_rejects_bogus_clause(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        assert verify_proof_v2(formula, proof).ok
        # A "proof" for a satisfiable formula must be rejected.
        sat_formula = CnfFormula([[1, 2, 3]])
        bogus = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        report = verify_proof_v2(sat_formula, bogus)
        assert not report.ok
        assert report.failed_clause_index is not None

    def test_counting_engine_agrees(self, tiny_unsat):
        proof = proof_of(tiny_unsat)
        watched = verify_proof_v2(tiny_unsat, proof)
        counting = verify_proof_v2(tiny_unsat, proof,
                                   engine_cls=CountingPropagator)
        assert watched.ok == counting.ok
        assert watched.core.clause_indices == counting.core.clause_indices
        assert watched.num_checked == counting.num_checked


class TestSkipping:
    def test_redundant_clause_skipped(self):
        """A deduced clause no later clause depends on is never tested."""
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2], [3, 4]])
        # (3 4) with (1)... inject a junk (but valid) deduced clause
        # that nothing uses: (1, 3) is RUP (falsify both: 1=0 → BCP on
        # (1 2),(1 -2) conflicts), but the refutation never touches it.
        proof = ConflictClauseProof([(1, 3), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        report = verify_proof_v2(formula, proof)
        assert report.ok
        assert report.num_skipped == 1
        assert report.num_checked == 2
        assert 0 not in report.marked_proof_indices

    def test_v2_never_checks_more_than_v1(self):
        rng = random.Random(77)
        for _ in range(20):
            formula = random_formula(rng, 8, 35)
            if not dpll_solve(formula).is_unsat:
                continue
            proof = proof_of(formula)
            v1 = verify_proof_v1(formula, proof)
            v2 = verify_proof_v2(formula, proof)
            assert v1.ok and v2.ok
            assert v2.num_checked <= v1.num_checked
            assert v2.num_checked + v2.num_skipped == len(proof)

    def test_skipped_on_real_instance(self):
        formula = pigeonhole(5)
        report = verify_proof_v2(formula, proof_of(formula))
        assert report.ok
        # PHP proofs from a restarting solver always contain some
        # redundant clauses.
        assert report.tested_fraction <= 1.0
        assert report.num_checked >= 1


class TestCoreExtraction:
    def test_core_is_unsat(self, tiny_unsat):
        report = verify_proof_v2(tiny_unsat, proof_of(tiny_unsat))
        core_formula = report.core.as_formula()
        assert dpll_solve(core_formula).is_unsat

    def test_core_subset_of_formula(self, tiny_unsat):
        report = verify_proof_v2(tiny_unsat, proof_of(tiny_unsat))
        assert all(0 <= i < tiny_unsat.num_clauses
                   for i in report.core.clause_indices)
        assert len(set(report.core.clause_indices)) == report.core.size

    def test_core_excludes_irrelevant_clauses(self):
        # Clauses over variables 5,6 cannot matter for the 1/2 conflict.
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2],
                              [5, 6], [-5, 6]])
        report = verify_proof_v2(formula, proof_of(formula))
        assert report.ok
        assert 4 not in report.core.clause_indices
        assert 5 not in report.core.clause_indices

    def test_cores_on_random_unsat(self):
        rng = random.Random(31)
        cores_checked = 0
        for _ in range(25):
            formula = random_formula(rng, 7, 30)
            result = solve(formula)
            if not result.is_unsat:
                continue
            proof = ConflictClauseProof.from_log(result.log)
            report = verify_proof_v2(formula, proof)
            assert report.ok
            assert dpll_solve(report.core.as_formula()).is_unsat
            cores_checked += 1
        assert cores_checked > 3

    def test_core_fraction(self, tiny_unsat):
        report = verify_proof_v2(tiny_unsat, proof_of(tiny_unsat))
        assert 0 < report.core.fraction <= 1.0
        assert report.core.size == len(report.core.clauses())

    def test_empty_clause_in_input_core(self):
        formula = CnfFormula([[1, 2], []])
        report = verify_proof_v2(formula, proof_of(formula))
        assert report.ok
        # The empty clause alone is the core.
        assert report.core.clause_indices == (1,)


class TestAgreementWithV1:
    @pytest.mark.parametrize("seed", range(5))
    def test_verdicts_agree(self, seed):
        rng = random.Random(500 + seed)
        for _ in range(15):
            formula = random_formula(rng, 8, 30)
            result = solve(formula)
            if not result.is_unsat:
                continue
            proof = ConflictClauseProof.from_log(result.log)
            assert (verify_proof_v1(formula, proof).ok
                    == verify_proof_v2(formula, proof).ok)
