"""Tests for proof statistics (local/global classification)."""

from repro.benchgen.php import pigeonhole
from repro.proofs.log import ProofLog
from repro.proofs.stats import analyze_log, clause_shapes
from repro.solver.cdcl import solve


def synthetic_log():
    log = ProofLog(input_clauses=[(1, 2), (-1, 2), (1, -2), (-1, -2)])
    log.add_step((2,), (0, 1), (1,))             # 1 lit, 1 resolution
    log.add_step((-2,), (2, 3), (1,))            # 1 lit, 1 resolution
    log.add_step((), (4, 5), (2,))               # 0 lits, 1 resolution
    log.ending = "empty"
    return log


class TestClauseShapes:
    def test_shapes(self):
        shapes = clause_shapes(synthetic_log())
        assert [(s.literals, s.resolutions) for s in shapes] == [
            (1, 1), (1, 1), (0, 1)]

    def test_prefers_conflict_format(self):
        shapes = clause_shapes(synthetic_log())
        # The empty clause: 0 literals < 1 resolution.
        assert shapes[2].prefers_conflict_format
        assert not shapes[0].prefers_conflict_format


class TestAnalyzeLog:
    def test_aggregates(self):
        stats = analyze_log(synthetic_log())
        assert stats.num_clauses == 3
        assert stats.total_literals == 2
        assert stats.total_resolutions == 3
        assert stats.max_clause_length == 1
        assert stats.length_histogram == {0: 1, 1: 2}

    def test_empty_log(self):
        stats = analyze_log(ProofLog())
        assert stats.num_clauses == 0
        assert stats.global_fraction == 0.0

    def test_explicit_threshold(self):
        stats = analyze_log(synthetic_log(), local_threshold=0)
        assert stats.global_clauses == 3
        stats = analyze_log(synthetic_log(), local_threshold=10)
        assert stats.global_clauses == 0

    def test_decision_scheme_more_global(self):
        formula = pigeonhole(5)
        local = analyze_log(solve(formula, learning="1uip").log)
        global_ = analyze_log(solve(formula, learning="decision").log)
        assert global_.global_fraction > local.global_fraction
        assert global_.mean_resolutions > local.mean_resolutions
        # Global clauses are shorter on average (decision literals only).
        assert global_.mean_clause_length < local.mean_clause_length

    def test_totals_match_log(self):
        formula = pigeonhole(4)
        log = solve(formula).log
        stats = analyze_log(log)
        assert stats.total_literals == log.deduced_literal_count()
        assert stats.total_resolutions == log.resolution_node_count()
