"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    EXIT_ERROR,
    EXIT_PARSE_ERROR,
    EXIT_RESOURCE_LIMIT,
    EXIT_SAT,
    EXIT_UNSAT,
    main,
)
from repro.core.dimacs import read_dimacs, write_dimacs
from repro.core.formula import CnfFormula
from repro.solver.dpll import dpll_solve


@pytest.fixture
def unsat_cnf(tmp_path):
    path = tmp_path / "unsat.cnf"
    write_dimacs(CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2],
                             [3, 4]]), path)
    return path


@pytest.fixture
def sat_cnf(tmp_path):
    path = tmp_path / "sat.cnf"
    write_dimacs(CnfFormula([[1, 2], [-1, 2]]), path)
    return path


class TestSolve:
    def test_sat_exit_and_model(self, sat_cnf, capsys):
        code = main(["solve", str(sat_cnf)])
        assert code == EXIT_SAT
        out = capsys.readouterr().out
        assert "s SAT" in out
        assert out.splitlines()[-1].startswith("v ")

    def test_unsat_writes_proof(self, unsat_cnf, tmp_path, capsys):
        proof_path = tmp_path / "out.ccp"
        code = main(["solve", str(unsat_cnf), "--proof",
                     str(proof_path), "--stats"])
        assert code == EXIT_UNSAT
        assert proof_path.exists()
        out = capsys.readouterr().out
        assert "s UNSAT" in out
        assert "c conflicts=" in out

    def test_learning_option(self, unsat_cnf):
        assert main(["solve", str(unsat_cnf),
                     "--learning", "decision"]) == EXIT_UNSAT


class TestVerify:
    def test_roundtrip(self, unsat_cnf, tmp_path, capsys):
        proof_path = tmp_path / "out.ccp"
        main(["solve", str(unsat_cnf), "--proof", str(proof_path)])
        code = main(["verify", str(unsat_cnf), str(proof_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "s PROOF_IS_CORRECT" in out
        assert "c unsat core:" in out

    def test_v1_procedure(self, unsat_cnf, tmp_path, capsys):
        proof_path = tmp_path / "out.ccp"
        main(["solve", str(unsat_cnf), "--proof", str(proof_path)])
        code = main(["verify", str(unsat_cnf), str(proof_path),
                     "--procedure", "verification1"])
        assert code == 0

    def test_rejects_wrong_proof(self, unsat_cnf, sat_cnf, tmp_path,
                                 capsys):
        proof_path = tmp_path / "out.ccp"
        main(["solve", str(unsat_cnf), "--proof", str(proof_path)])
        code = main(["verify", str(sat_cnf), str(proof_path)])
        assert code == 1
        assert "questionable clause" in capsys.readouterr().out


class TestCore:
    def test_core_extraction(self, unsat_cnf, tmp_path, capsys):
        proof_path = tmp_path / "out.ccp"
        core_path = tmp_path / "core.cnf"
        main(["solve", str(unsat_cnf), "--proof", str(proof_path)])
        code = main(["core", str(unsat_cnf), str(proof_path),
                     "--output", str(core_path)])
        assert code == 0
        core = read_dimacs(core_path)
        assert dpll_solve(core).is_unsat
        assert core.num_clauses <= 4  # the padding clause is dropped

    def test_core_rejects_bad_proof(self, sat_cnf, unsat_cnf, tmp_path):
        proof_path = tmp_path / "out.ccp"
        main(["solve", str(unsat_cnf), "--proof", str(proof_path)])
        assert main(["core", str(sat_cnf), str(proof_path)]) == 1


class TestDrupCli:
    def test_solve_writes_drup_and_verify_drup(self, unsat_cnf, tmp_path,
                                               capsys):
        drup_path = tmp_path / "out.drup"
        code = main(["solve", str(unsat_cnf), "--drup", str(drup_path)])
        assert code == EXIT_UNSAT
        assert drup_path.exists()
        assert "DRUP trace written" in capsys.readouterr().out

        code = main(["verify-drup", str(unsat_cnf), str(drup_path)])
        assert code == 0
        assert "s PROOF_IS_CORRECT" in capsys.readouterr().out

    def test_verify_drup_rejects_wrong_formula(self, unsat_cnf, sat_cnf,
                                               tmp_path, capsys):
        drup_path = tmp_path / "out.drup"
        main(["solve", str(unsat_cnf), "--drup", str(drup_path)])
        code = main(["verify-drup", str(sat_cnf), str(drup_path)])
        assert code == 1
        assert "failed at event" in capsys.readouterr().out


@pytest.fixture
def good_proof(unsat_cnf, tmp_path):
    proof_path = tmp_path / "good.ccp"
    main(["solve", str(unsat_cnf), "--proof", str(proof_path)])
    return proof_path


class TestErrorHandling:
    """Operational failures exit with typed codes and a one-line
    ``c error:`` diagnostic on stderr — never a traceback."""

    def test_garbage_cnf_exits_65(self, tmp_path, good_proof, capsys):
        bad = tmp_path / "bad.cnf"
        bad.write_text("garbage !! not dimacs\n")
        code = main(["verify", str(bad), str(good_proof)])
        assert code == EXIT_PARSE_ERROR
        err = capsys.readouterr().err
        assert err.startswith("c error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_truncated_proof_exits_65(self, unsat_cnf, good_proof,
                                      tmp_path, capsys):
        truncated = tmp_path / "trunc.ccp"
        truncated.write_bytes(good_proof.read_bytes()[:-2])
        code = main(["verify", str(unsat_cnf), str(truncated)])
        assert code == EXIT_PARSE_ERROR
        err = capsys.readouterr().err
        assert err.startswith("c error:")
        assert "Traceback" not in err

    def test_binary_garbage_proof_exits_65(self, unsat_cnf, tmp_path,
                                           capsys):
        bad = tmp_path / "bad.ccp"
        bad.write_bytes(b"\x01\x02\x03 not a proof")
        code = main(["verify", str(unsat_cnf), str(bad)])
        assert code == EXIT_PARSE_ERROR
        assert capsys.readouterr().err.startswith("c error:")

    def test_missing_file_exits_2(self, good_proof, capsys):
        code = main(["verify", "/nonexistent/f.cnf", str(good_proof)])
        assert code == EXIT_ERROR
        assert capsys.readouterr().err.startswith("c error:")

    def test_strict_flag_rejects_headerless(self, tmp_path, good_proof,
                                            capsys):
        headerless = tmp_path / "nohead.cnf"
        headerless.write_text("1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n3 4 0\n")
        assert main(["verify", str(headerless), str(good_proof)]) == 0
        capsys.readouterr()
        code = main(["verify", str(headerless), str(good_proof),
                     "--strict"])
        assert code == EXIT_PARSE_ERROR
        assert capsys.readouterr().err.startswith("c error:")

    def test_garbage_drup_exits_65(self, unsat_cnf, tmp_path, capsys):
        bad = tmp_path / "bad.drup"
        bad.write_text("1 2 without terminator\n")
        code = main(["verify-drup", str(unsat_cnf), str(bad)])
        assert code == EXIT_PARSE_ERROR
        assert capsys.readouterr().err.startswith("c error:")


class TestBudgetCli:
    def test_verify_budget_exits_3(self, unsat_cnf, good_proof, capsys):
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--max-props", "1"])
        assert code == EXIT_RESOURCE_LIMIT
        out = capsys.readouterr().out
        assert "s RESOURCE_LIMIT_EXCEEDED" in out
        assert "c budget exhausted:" in out

    def test_verify_drup_timeout_exits_3(self, unsat_cnf, tmp_path,
                                         capsys):
        drup_path = tmp_path / "t.drup"
        main(["solve", str(unsat_cnf), "--drup", str(drup_path)])
        capsys.readouterr()
        code = main(["verify-drup", str(unsat_cnf), str(drup_path),
                     "--timeout", "0.000001"])
        assert code == EXIT_RESOURCE_LIMIT
        assert "s RESOURCE_LIMIT_EXCEEDED" in capsys.readouterr().out

    def test_generous_budget_still_verifies(self, unsat_cnf, good_proof):
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--timeout", "3600", "--max-props", "1000000000"])
        assert code == 0


class TestSolveVariants:
    def test_preprocess_flag_lifts_proof(self, unsat_cnf, tmp_path,
                                         capsys):
        proof_path = tmp_path / "p.ccp"
        code = main(["solve", str(unsat_cnf), "--preprocess",
                     "--proof", str(proof_path)])
        assert code == EXIT_UNSAT
        out = capsys.readouterr().out
        assert "c preprocess:" in out
        # The lifted proof verifies against the ORIGINAL file.
        assert main(["verify", str(unsat_cnf), str(proof_path)]) == 0

    def test_minimize_flag(self, unsat_cnf, tmp_path):
        proof_path = tmp_path / "p.ccp"
        code = main(["solve", str(unsat_cnf), "--minimize",
                     "--proof", str(proof_path)])
        assert code == EXIT_UNSAT
        assert main(["verify", str(unsat_cnf), str(proof_path)]) == 0

    def test_preprocess_with_drup_skipped(self, unsat_cnf, tmp_path,
                                          capsys):
        drup_path = tmp_path / "p.drup"
        code = main(["solve", str(unsat_cnf), "--preprocess",
                     "--drup", str(drup_path)])
        assert code == EXIT_UNSAT
        assert "not supported together" in capsys.readouterr().out
        assert not drup_path.exists()

    def test_preprocess_sat_lifts_model(self, sat_cnf, capsys):
        code = main(["solve", str(sat_cnf), "--preprocess"])
        assert code == EXIT_SAT
        assert "v " in capsys.readouterr().out

    def test_preprocess_unsat_without_proof_file(self, unsat_cnf,
                                                 capsys):
        code = main(["solve", str(unsat_cnf), "--preprocess"])
        assert code == EXIT_UNSAT
        assert "s UNSAT" in capsys.readouterr().out


class TestObservabilityCli:
    def test_metrics_and_trace_artifacts(self, unsat_cnf, good_proof,
                                         tmp_path, capsys):
        import json

        from repro.obs import (
            read_jsonl,
            validate_metrics,
            validate_trace,
        )

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"c metrics written to {metrics_path}" in out
        assert f"c trace written to {trace_path}" in out
        doc = json.loads(metrics_path.read_text())
        assert validate_metrics(doc) == []
        assert doc["run"]["command"] == "verify"
        assert "stats" in doc
        assert validate_trace(read_jsonl(trace_path)) == []

    def test_parallel_metrics_artifact(self, unsat_cnf, good_proof,
                                       tmp_path):
        import json
        import multiprocessing

        from repro.obs import validate_metrics

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("parallel backend needs fork")
        metrics_path = tmp_path / "metrics.json"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--procedure", "verification1", "--jobs", "2",
                     "--metrics-out", str(metrics_path)])
        assert code == 0
        doc = json.loads(metrics_path.read_text())
        assert validate_metrics(doc) == []
        metrics = doc["metrics"]
        assert metrics["repro_verify_jobs"]["value"]["value"] == 2
        assert metrics["repro_parallel_shards_total"]["value"] > 0
        # worker per-check observations merged into the parent
        assert metrics["repro_check_seconds"]["value"]["count"] \
            == metrics["repro_verify_checks_total"]["value"]

    def test_prometheus_format(self, unsat_cnf, good_proof, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--metrics-out", str(metrics_path),
                     "--metrics-format", "prometheus"])
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_verify_checks_total counter" in text
        assert 'repro_check_seconds_bucket{le="+Inf"}' in text

    def test_stats_footer(self, unsat_cnf, good_proof, capsys):
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c stats: total=" in out
        assert "c stats: checks=" in out
        assert "c stats: bcp assignments=" in out

    def test_progress_on_stderr(self, unsat_cnf, good_proof, capsys):
        code = main(["verify", str(unsat_cnf), str(good_proof),
                     "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "c progress: " in err
        assert err.splitlines()[-1].endswith("s elapsed")

    def test_verify_drup_artifacts(self, unsat_cnf, tmp_path, capsys):
        import json

        from repro.obs import validate_metrics

        drup_path = tmp_path / "trace.drup"
        main(["solve", str(unsat_cnf), "--drup", str(drup_path)])
        capsys.readouterr()
        metrics_path = tmp_path / "metrics.json"
        code = main(["verify-drup", str(unsat_cnf), str(drup_path),
                     "--metrics-out", str(metrics_path), "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c stats: total=" in out
        doc = json.loads(metrics_path.read_text())
        assert validate_metrics(doc) == []
        assert "repro_drup_additions_total" in doc["metrics"]

    def test_artifacts_written_on_bad_proof(self, sat_cnf, unsat_cnf,
                                            good_proof, tmp_path,
                                            capsys):
        """A failing verification still leaves its artifacts behind —
        that is when you want the trace most."""
        metrics_path = tmp_path / "metrics.json"
        code = main(["verify", str(sat_cnf), str(good_proof),
                     "--metrics-out", str(metrics_path)])
        assert code == 1
        assert metrics_path.exists()
