"""Unit and property tests for DIMACS parsing/writing."""

import pytest
from hypothesis import given

from repro.core.clause import Clause
from repro.core.dimacs import (
    format_dimacs,
    parse_dimacs,
    read_dimacs,
    write_dimacs,
)
from repro.core.exceptions import DimacsParseError
from repro.core.formula import CnfFormula

from tests.conftest import cnf_formulas


class TestParse:
    def test_basic(self):
        f = parse_dimacs("p cnf 3 2\n1 -2 0\n3 0\n")
        assert f.num_vars == 3
        assert f.num_clauses == 2
        assert f[0] == Clause([1, -2])

    def test_comments_ignored(self):
        f = parse_dimacs("c hello\np cnf 1 1\nc mid\n1 0\n")
        assert f.num_clauses == 1

    def test_percent_comment(self):
        f = parse_dimacs("p cnf 1 1\n1 0\n%\n")
        assert f.num_clauses == 1

    def test_clause_spanning_lines(self):
        f = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert f[0] == Clause([1, 2, 3])

    def test_multiple_clauses_per_line(self):
        f = parse_dimacs("p cnf 2 2\n1 0 2 0\n")
        assert f.num_clauses == 2

    def test_headerless_accepted_by_default(self):
        f = parse_dimacs("1 -1 0\n")
        assert f.num_clauses == 1

    def test_header_overdeclares_vars(self):
        f = parse_dimacs("p cnf 10 1\n1 0\n")
        assert f.num_vars == 10

    def test_missing_terminator_rejected(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_bad_token_rejected(self):
        with pytest.raises(DimacsParseError, match="unexpected token"):
            parse_dimacs("p cnf 1 1\n1 x 0\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(DimacsParseError, match="duplicate"):
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p dnf 1 1\n1 0\n")

    def test_negative_header_counts_rejected(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf -1 1\n1 0\n")


class TestStrictMode:
    def test_requires_header(self):
        with pytest.raises(DimacsParseError, match="missing"):
            parse_dimacs("1 0\n", strict=True)

    def test_clause_count_checked(self):
        with pytest.raises(DimacsParseError, match="declares 2 clauses"):
            parse_dimacs("p cnf 1 2\n1 0\n", strict=True)

    def test_var_count_checked(self):
        with pytest.raises(DimacsParseError, match="variable"):
            parse_dimacs("p cnf 1 1\n2 0\n", strict=True)

    def test_valid_strict(self):
        f = parse_dimacs("p cnf 2 1\n1 -2 0\n", strict=True)
        assert f.num_clauses == 1


class TestFormat:
    def test_header_line(self):
        text = format_dimacs(CnfFormula([[1, -2]]))
        assert text.startswith("p cnf 2 1\n")

    def test_comment(self):
        text = format_dimacs(CnfFormula([[1]]), comment="a\nb")
        assert "c a\n" in text and "c b\n" in text

    def test_empty_clause_rendered(self):
        text = format_dimacs(CnfFormula([[]]))
        assert "\n0\n" in text

    @given(cnf_formulas(max_vars=10, max_clauses=15))
    def test_roundtrip(self, f):
        g = parse_dimacs(format_dimacs(f), strict=True)
        assert g.num_vars == f.num_vars
        assert [c.literals for c in g] == [c.literals for c in f]


class TestFileIo:
    def test_write_read(self, tmp_path):
        f = CnfFormula([[1, 2], [-1]])
        path = tmp_path / "test.cnf"
        write_dimacs(f, path, comment="roundtrip")
        g = read_dimacs(path, strict=True)
        assert [c.literals for c in g] == [c.literals for c in f]
