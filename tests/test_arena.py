"""Unit tests for the flat clause arena and its shared-memory transport."""

import pytest

from repro.bcp.arena import (
    ArenaPropagator,
    ClauseArena,
    build_arena,
)
from repro.bcp.engine import TRUE
from repro.core.formula import CnfFormula
from repro.core.literals import encode
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)


def enc_clause(lits):
    return [encode(lit) for lit in lits]


class TestClauseArena:
    def test_append_and_lits(self):
        arena = ClauseArena()
        cid = arena.append(enc_clause([1, -2]))
        assert cid == 0
        assert arena.num_clauses == 1
        assert list(arena.lits(0)) == enc_clause([1, -2])
        assert arena.length(0) == 2
        assert arena.num_vars == 2

    def test_empty_clause(self):
        arena = ClauseArena()
        arena.append([])
        assert arena.length(0) == 0
        assert list(arena.lits(0)) == []

    def test_csr_offsets_dense(self):
        arena = ClauseArena()
        arena.append(enc_clause([1, 2, 3]))
        arena.append([])
        arena.append(enc_clause([-1]))
        assert list(arena.starts) == [0, 3, 3, 4]

    def test_tombstone_hides_lits(self):
        arena = ClauseArena()
        arena.append(enc_clause([1, 2]))
        arena.flags[0] |= 1
        assert tuple(arena.lits(0)) == ()
        # length() reads the offsets; the propagator's clause_len is
        # the flag-aware accessor.

    def test_live_accounting(self):
        """The streaming window-shift trigger reads these counters:
        appends grow them, tombstones shrink them, idempotently."""
        arena = ClauseArena()
        arena.append(enc_clause([1, 2, 3]))
        arena.append(enc_clause([-1]))
        assert arena.live_clauses == 2
        assert arena.live_words == 4
        assert arena.dead_words == 0
        bytes_before = arena.live_bytes()
        assert bytes_before == (4 + 2) * arena.pool.itemsize

        arena.tombstone(0)
        assert arena.live_clauses == 1
        assert arena.live_words == 1
        assert arena.dead_words == 3
        assert arena.live_bytes() < bytes_before
        # The pool itself never shrinks — only the live view does.
        assert len(arena.pool) == 4

        arena.tombstone(0)     # idempotent: no double decrement
        assert arena.live_clauses == 1
        assert arena.live_words == 1

    def test_remove_clause_tombstones(self):
        propagator = ArenaPropagator(3)
        cid = propagator.add_clause(enc_clause([1, 2, 3]),
                                    propagate_units=False)
        live_before = propagator.arena.live_clauses
        propagator.remove_clause(cid)
        assert propagator.arena.live_clauses == live_before - 1
        assert propagator.clause_len(cid) == 0


class TestBuildArena:
    def test_layout_matches_checker_cids(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        arena, num_input = build_arena(formula, proof)
        assert num_input == 4
        assert arena.num_clauses == 6
        # Proof clause k is arena clause num_input + k.
        assert list(arena.lits(4)) == enc_clause([1])
        assert list(arena.lits(5)) == enc_clause([-1])

    def test_duplicate_literals_deduped(self):
        formula = CnfFormula([[1, 1, -2]])
        proof = ConflictClauseProof([()], "empty")
        arena, _ = build_arena(formula, proof)
        assert list(arena.lits(0)) == enc_clause([1, -2])


class TestSharedMemory:
    def test_round_trip_exact(self):
        formula = CnfFormula([[1, 2, 3], [-1, -2], [3]])
        proof = ConflictClauseProof([()], "empty")
        arena, _ = build_arena(formula, proof)
        handle = arena.to_shared_memory()
        try:
            attached = ClauseArena.from_shared_memory(handle)
            assert attached.num_vars == arena.num_vars
            assert attached.num_clauses == arena.num_clauses
            assert list(attached.pool) == list(arena.pool)
            assert list(attached.starts) == list(arena.starts)
            attached.detach()
        finally:
            arena.release_shared(unlink=True)

    def test_attached_arena_rejects_append(self):
        arena = ClauseArena()
        arena.append(enc_clause([1, 2]))
        handle = arena.to_shared_memory()
        try:
            attached = ClauseArena.from_shared_memory(handle)
            with pytest.raises(ValueError, match="attached"):
                attached.append(enc_clause([3]))
            attached.detach()
        finally:
            arena.release_shared(unlink=True)

    def test_double_export_rejected(self):
        arena = ClauseArena()
        arena.append(enc_clause([1]))
        arena.to_shared_memory()
        try:
            with pytest.raises(ValueError, match="already exported"):
                arena.to_shared_memory()
        finally:
            arena.release_shared(unlink=True)

    def test_detach_idempotent(self):
        arena = ClauseArena()
        arena.append(enc_clause([1, 2]))
        handle = arena.to_shared_memory()
        try:
            attached = ClauseArena.from_shared_memory(handle)
            attached.detach()
            attached.detach()  # second call is a no-op
            assert not attached.readonly
        finally:
            arena.release_shared(unlink=True)

    def test_release_shared_idempotent(self):
        arena = ClauseArena()
        arena.append(enc_clause([1]))
        arena.to_shared_memory()
        arena.release_shared(unlink=True)
        arena.release_shared(unlink=True)  # nothing exported: no-op

    def test_detach_on_plain_arena_is_noop(self):
        arena = ClauseArena()
        arena.append(enc_clause([1]))
        arena.detach()
        assert arena.num_clauses == 1

    def test_tombstones_stay_process_local(self):
        """flags are never shipped: an attached arena starts with a
        fresh zero flag set regardless of the creator's deletions."""
        arena = ClauseArena()
        arena.append(enc_clause([1, 2]))
        arena.flags[0] |= 1
        handle = arena.to_shared_memory()
        try:
            attached = ClauseArena.from_shared_memory(handle)
            assert tuple(attached.lits(0)) == tuple(enc_clause([1, 2]))
            attached.detach()
        finally:
            arena.release_shared(unlink=True)


class TestAdoptedPropagator:
    def test_propagates_over_shared_arena(self):
        formula = CnfFormula([[1], [-1, 2], [-2, 3]])
        proof = ConflictClauseProof([()], "empty")
        arena, _ = build_arena(formula, proof)
        handle = arena.to_shared_memory()
        try:
            attached = ClauseArena.from_shared_memory(handle)
            engine = ArenaPropagator(arena=attached)
            # Adoption does not enqueue units; do it explicitly.
            engine.enqueue(encode(1), 0)
            assert engine.propagate(ceiling=3) is None
            for var in (1, 2, 3):
                assert engine.value(encode(var)) == TRUE
            attached.detach()
        finally:
            arena.release_shared(unlink=True)

    def test_adopt_finds_empty_clause(self):
        arena = ClauseArena()
        arena.append(enc_clause([1, 2]))
        arena.append([])
        engine = ArenaPropagator(arena=arena)
        assert engine.empty_clause_cid == 1

    def test_blocker_hit_skips_body(self):
        engine = ArenaPropagator()
        engine.add_clause(enc_clause([1, 2]), propagate_units=False)
        engine.new_level()
        engine.enqueue(encode(2), None)   # blocker of watch on ¬1 …
        engine.propagate()
        before = engine.counters.clause_visits
        engine.enqueue(encode(-1), None)  # … now visiting keeps it true
        engine.propagate()
        assert engine.counters.clause_visits == before
        assert engine.counters.watch_visits >= 1
