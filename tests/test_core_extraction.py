"""Tests for the core-extraction convenience API."""

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.core_extraction import extract_core, validate_core


def proof_of(formula):
    result = solve(formula)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


class TestExtractCore:
    def test_basic(self, tiny_unsat):
        core = extract_core(tiny_unsat, proof_of(tiny_unsat))
        assert core.size > 0
        assert core.formula is tiny_unsat

    def test_bad_proof_raises(self):
        sat_formula = CnfFormula([[1, 2, 3]])
        bogus = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        with pytest.raises(ReproError, match="incorrect proof"):
            extract_core(sat_formula, bogus)

    def test_core_formula_preserves_variables(self, tiny_unsat):
        core = extract_core(tiny_unsat, proof_of(tiny_unsat))
        assert core.as_formula().num_vars == tiny_unsat.num_vars


class TestValidateCore:
    def test_valid_core(self, tiny_unsat):
        core = extract_core(tiny_unsat, proof_of(tiny_unsat))
        assert validate_core(core)

    def test_php_core(self):
        formula = pigeonhole(4)
        core = extract_core(formula, proof_of(formula))
        assert validate_core(core)
        # PHP is already minimal-ish: the core keeps most clauses.
        assert core.fraction > 0.5

    def test_padded_formula_core_drops_padding(self):
        padded = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2],
                             [10, 11], [12], [-9, 8]])
        core = extract_core(padded, proof_of(padded))
        assert validate_core(core)
        assert core.size <= 4
        assert all(index < 4 for index in core.clause_indices)
