"""Tests for the core-extraction convenience API."""

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.core_extraction import extract_core, validate_core


def proof_of(formula):
    result = solve(formula)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


class TestExtractCore:
    def test_basic(self, tiny_unsat):
        core = extract_core(tiny_unsat, proof_of(tiny_unsat))
        assert core.size > 0
        assert core.formula is tiny_unsat

    def test_bad_proof_raises(self):
        sat_formula = CnfFormula([[1, 2, 3]])
        bogus = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        with pytest.raises(ReproError, match="incorrect proof"):
            extract_core(sat_formula, bogus)

    def test_core_formula_preserves_variables(self, tiny_unsat):
        core = extract_core(tiny_unsat, proof_of(tiny_unsat))
        assert core.as_formula().num_vars == tiny_unsat.num_vars


class TestValidateCore:
    def test_valid_core(self, tiny_unsat):
        core = extract_core(tiny_unsat, proof_of(tiny_unsat))
        assert validate_core(core)

    def test_php_core(self):
        formula = pigeonhole(4)
        core = extract_core(formula, proof_of(formula))
        assert validate_core(core)
        # PHP is already minimal-ish: the core keeps most clauses.
        assert core.fraction > 0.5

    def test_padded_formula_core_drops_padding(self):
        padded = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2],
                             [10, 11], [12], [-9, 8]])
        core = extract_core(padded, proof_of(padded))
        assert validate_core(core)
        assert core.size <= 4
        assert all(index < 4 for index in core.clause_indices)


class TestCoreSoundness:
    """The extracted core is itself UNSAT, shown with the paper's own
    machinery: the trimmed (marked-only) proof re-verifies against the
    core formula under Proof_verification1, and unmarked clauses are
    gone from the core.
    """

    # The paper's worked example: two derived units refute the first
    # four clauses; (4 5) is padding that must not survive.
    PAPER_F = CnfFormula([[1, 2], [1, -2], [-1, 3], [-1, -3], [4, 5]])
    PAPER_PROOF = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)

    def assert_core_sound(self, formula, proof, padding_indices=()):
        from repro.verify.trimming import trim_proof
        from repro.verify.verification import verify_proof_v1

        core = extract_core(formula, proof)
        trimmed = trim_proof(formula, proof).trimmed
        # Re-verify the trimmed proof against the core alone: every
        # conflict only ever used marked clauses, so the core formula
        # must still refute it — which certifies the core is UNSAT.
        report = verify_proof_v1(core.as_formula(), trimmed)
        assert report.ok, report.failure_reason
        for index in padding_indices:
            assert index not in core.clause_indices
        core_clauses = {clause.literals
                        for clause in core.as_formula()}
        counts: dict[tuple, int] = {}
        for clause in formula:
            counts[clause.literals] = counts.get(clause.literals, 0) + 1
        # An unmarked clause is absent from the core — checkable at the
        # literal level only when no marked duplicate shares its body.
        for index in range(formula.num_clauses):
            literals = formula[index].literals
            if index not in set(core.clause_indices) \
                    and counts[literals] == 1:
                assert literals not in core_clauses
        return core

    def test_paper_worked_example(self):
        core = self.assert_core_sound(self.PAPER_F, self.PAPER_PROOF,
                                      padding_indices=(4,))
        assert core.clause_indices == (0, 1, 2, 3)
        assert core.size == 4

    def test_generated_instances(self):
        import random

        for seed in (11, 23, 47):
            rng = random.Random(seed)
            while True:
                clauses = [[rng.choice([1, -1]) * v
                            for v in rng.sample(range(1, 11), 3)]
                           for _ in range(45)]
                # Padding over fresh variables: never part of any
                # conflict, so it must stay unmarked.
                padding_at = len(clauses)
                clauses += [[20, 21], [22], [-23, 24]]
                formula = CnfFormula(clauses)
                result = solve(formula)
                if result.is_unsat:
                    break
            proof = ConflictClauseProof.from_log(result.log)
            core = self.assert_core_sound(
                formula, proof,
                padding_indices=range(padding_at, padding_at + 3))
            assert 0 < core.size <= padding_at
