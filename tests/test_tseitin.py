"""Tests for the Tseitin encoder.

The central property: for every input assignment, the encoding (with the
inputs fixed by unit clauses) is satisfiable, and in any model the output
literal's value equals the circuit simulation.
"""

import random

import pytest

from repro.circuits.library import ripple_carry_adder
from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import TseitinEncoder, encode_circuit
from repro.solver.cdcl import solve


def simulation_consistent(circuit, trials=20, seed=0):
    rng = random.Random(seed)
    formula, literal = encode_circuit(circuit)
    for _ in range(trials):
        assignment = {net: rng.random() < 0.5 for net in circuit.inputs}
        values = circuit.simulate(assignment)
        probe = formula.copy()
        for net in circuit.inputs:
            lit = literal[net]
            probe.add_clause([lit if assignment[net] else -lit])
        result = solve(probe, log_proof=False)
        assert result.is_sat, f"encoding UNSAT under {assignment}"
        for net in circuit.outputs:
            lit = literal[net]
            value = (result.model[abs(lit)] if lit > 0
                     else not result.model[abs(lit)])
            assert value == values[net], (net, assignment)


class TestGateEncodings:
    def gate_circuit(self, op, arity):
        c = Circuit(op)
        ins = c.add_inputs([f"i{k}" for k in range(arity)])
        c.set_output(c.add_gate(op, ins, name="y"))
        return c

    @pytest.mark.parametrize("op,arity", [
        ("AND", 3), ("OR", 3), ("NAND", 2), ("NOR", 3),
        ("XOR", 2), ("XNOR", 2), ("MUX", 3), ("BUF", 1), ("NOT", 1),
    ])
    def test_single_gate(self, op, arity):
        simulation_consistent(self.gate_circuit(op, arity), trials=16)

    def test_constants(self):
        c = Circuit()
        c.add_input("a")  # unused input so trials vary
        c.set_output(c.CONST1(name="one"))
        c.set_output(c.CONST0(name="zero"))
        simulation_consistent(c, trials=4)

    def test_not_uses_no_new_variable(self):
        c = Circuit()
        a = c.add_input("a")
        c.set_output(c.NOT(a, name="y"))
        formula, literal = encode_circuit(c)
        assert literal["y"] == -literal["a"]

    def test_buf_aliases(self):
        c = Circuit()
        a = c.add_input("a")
        c.set_output(c.BUF(a, name="y"))
        _, literal = encode_circuit(c)
        assert literal["y"] == literal["a"]


class TestComposite:
    def test_adder_encoding(self):
        simulation_consistent(ripple_carry_adder(3), trials=25)

    def test_forced_output_unsat_when_impossible(self):
        c = Circuit()
        a = c.add_input("a")
        y = c.AND(a, c.NOT(a), name="y")
        c.set_output(y)
        encoder = TseitinEncoder()
        literal = encoder.encode(c)
        encoder.assert_true(literal["y"])
        assert solve(encoder.formula).is_unsat


class TestEncoderMechanics:
    def test_new_vars_sequential(self):
        encoder = TseitinEncoder()
        assert encoder.new_var("x") == 1
        assert encoder.new_var() == 2
        assert encoder.names[1] == "x"

    def test_new_bus(self):
        encoder = TseitinEncoder()
        assert encoder.new_bus("b", 3) == [1, 2, 3]

    def test_true_var_singleton(self):
        encoder = TseitinEncoder()
        assert encoder.true_var() == encoder.true_var()
        assert encoder.constant(True) == -encoder.constant(False)

    def test_binding_shares_variables(self):
        c = Circuit()
        a = c.add_input("a")
        c.set_output(c.NOT(a, name="y"))
        encoder = TseitinEncoder()
        shared = encoder.new_var("shared")
        first = encoder.encode(c, {"a": shared})
        second = encoder.encode(c, {"a": shared})
        assert first["a"] == second["a"] == shared

    def test_two_instances_consistent(self):
        """Two instantiations over shared inputs are equal: the miter
        XOR of their outputs is UNSAT when asserted."""
        circuit = ripple_carry_adder(2)
        encoder = TseitinEncoder()
        first = encoder.encode(circuit)
        binding = {net: first[net] for net in circuit.inputs}
        second = encoder.encode(circuit, binding, prefix="b.")
        x = first["s[0]"]
        y = second["s[0]"]
        encoder.add_clause([x, y])
        encoder.add_clause([-x, -y])
        assert solve(encoder.formula).is_unsat
