"""Unit tests for resolution graph proofs and their checker."""

import pytest

from repro.core.exceptions import ProofFormatError
from repro.core.formula import CnfFormula
from repro.proofs.log import ProofLog
from repro.proofs.resolution import ResolutionGraphProof, ResolutionNode
from repro.solver.cdcl import solve


def refutation_log():
    """(1 2), (-1 2), (1 -2), (-1 -2) refuted by hand."""
    log = ProofLog(input_clauses=[(1, 2), (-1, 2), (1, -2), (-1, -2)])
    log.add_step((2,), (0, 1), (1,))     # ref 4
    log.add_step((-2,), (2, 3), (1,))    # ref 5
    log.add_step((), (4, 5), (2,))       # ref 6
    log.ending = "empty"
    return log


class TestFromLog:
    def test_node_count(self):
        graph = ResolutionGraphProof.from_log(refutation_log())
        assert graph.node_count == 3
        assert graph.num_sources == 4

    def test_check_passes(self):
        result = ResolutionGraphProof.from_log(refutation_log()).check()
        assert result.ok
        assert result.nodes_checked == 3
        assert result.peak_stored_literals > 0

    def test_copy_steps_create_no_nodes(self):
        log = ProofLog(input_clauses=[(1,), (-1,)])
        log.add_step((1,), (0,), ())        # copy of input 0
        log.add_step((), (2, 1), (1,))
        log.ending = "empty"
        graph = ResolutionGraphProof.from_log(log)
        assert graph.node_count == 1
        assert graph.check().ok

    def test_incomplete_log_rejected(self):
        with pytest.raises(ProofFormatError):
            ResolutionGraphProof.from_log(ProofLog())

    def test_stored_size(self):
        graph = ResolutionGraphProof.from_log(refutation_log())
        assert graph.stored_size() == 3 * graph.node_count


class TestChecker:
    def test_invalid_pivot_rejected(self):
        graph = ResolutionGraphProof(
            [(1, 2), (-1, 3)], [ResolutionNode(0, 1, 2)], sink=2)
        result = graph.check()
        assert not result.ok
        assert "pivot" in result.error

    def test_non_clashing_parents_rejected(self):
        graph = ResolutionGraphProof(
            [(1, 2), (3, 4)], [ResolutionNode(0, 1, 1)], sink=2)
        result = graph.check()
        assert not result.ok
        assert result.failed_node == 2

    def test_double_clash_rejected(self):
        graph = ResolutionGraphProof(
            [(1, 2), (-1, -2)], [ResolutionNode(0, 1, 1)], sink=2)
        assert not graph.check().ok

    def test_nonempty_sink_rejected(self):
        graph = ResolutionGraphProof(
            [(1, 2), (-1, 3)], [ResolutionNode(0, 1, 1)], sink=2)
        result = graph.check()
        assert not result.ok
        assert "sink" in result.error

    def test_forward_reference_rejected(self):
        with pytest.raises(ProofFormatError):
            ResolutionGraphProof([(1,)], [ResolutionNode(0, 1, 1)], sink=1)

    def test_sink_out_of_range(self):
        with pytest.raises(ProofFormatError):
            ResolutionGraphProof([(1,)], [], sink=5)

    def test_clause_of_source(self):
        graph = ResolutionGraphProof.from_log(refutation_log())
        assert graph.clause_of(0).literals == (1, 2)

    def test_peak_tracks_materialization(self):
        graph = ResolutionGraphProof.from_log(refutation_log())
        result = graph.check()
        # Peak of *live* literals: while resolving node 5, sources 2 and
        # 3 (4 lits), their resolvent (1 lit) and node 4's clause
        # (1 lit) are live simultaneously.
        assert result.peak_stored_literals == 6


class TestSolverGraphs:
    @pytest.mark.parametrize("learning", ["1uip", "decision", "hybrid",
                                          "adaptive"])
    def test_solver_graphs_check(self, learning, tiny_unsat):
        result = solve(tiny_unsat, learning=learning)
        graph = ResolutionGraphProof.from_log(result.log)
        assert graph.check().ok

    def test_php_graph_checks(self):
        from repro.benchgen.php import pigeonhole
        result = solve(pigeonhole(4))
        graph = ResolutionGraphProof.from_log(result.log)
        check = graph.check()
        assert check.ok
        assert graph.node_count == result.log.resolution_node_count()

    def test_empty_clause_input(self):
        result = solve(CnfFormula([[2], []]))
        graph = ResolutionGraphProof.from_log(result.log)
        assert graph.check().ok
        assert graph.node_count == 0
