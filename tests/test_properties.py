"""Hypothesis property tests over the whole pipeline.

These encode the paper's soundness story as machine-checked properties:

* a SAT verdict always carries a satisfying model;
* an UNSAT verdict always carries a proof that the independent verifier
  accepts, whose resolution-graph expansion also checks;
* the extracted core is always unsatisfiable;
* proofs survive a disk roundtrip unchanged;
* verification verdicts do not depend on the BCP engine.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bcp.counting import CountingPropagator
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.resolution import ResolutionGraphProof
from repro.proofs.trace_format import format_proof, parse_proof
from repro.solver.cdcl import SolverOptions, solve
from repro.solver.dpll import dpll_solve
from repro.verify.verification import verify_proof_v1, verify_proof_v2

from tests.conftest import cnf_formulas

_SETTINGS = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(cnf_formulas(max_vars=9, max_clauses=40))
def test_verdict_always_certified(formula):
    result = solve(formula)
    if result.is_sat:
        assert formula.is_satisfied_by(result.model)
    else:
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok


@_SETTINGS
@given(cnf_formulas(max_vars=8, max_clauses=35))
def test_resolution_graph_always_checks(formula):
    result = solve(formula)
    if result.is_unsat:
        graph = ResolutionGraphProof.from_log(result.log)
        check = graph.check()
        assert check.ok, check.error


@_SETTINGS
@given(cnf_formulas(max_vars=8, max_clauses=35))
def test_core_always_unsat(formula):
    result = solve(formula)
    if result.is_unsat:
        proof = ConflictClauseProof.from_log(result.log)
        report = verify_proof_v2(formula, proof)
        assert report.ok
        assert dpll_solve(report.core.as_formula()).is_unsat


@_SETTINGS
@given(cnf_formulas(max_vars=8, max_clauses=35))
def test_proof_disk_roundtrip(formula):
    result = solve(formula)
    if result.is_unsat:
        proof = ConflictClauseProof.from_log(result.log)
        assert parse_proof(format_proof(proof)) == proof


@_SETTINGS
@given(cnf_formulas(max_vars=7, max_clauses=30))
def test_engine_independent_verdicts(formula):
    result = solve(formula)
    if result.is_unsat:
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v1(formula, proof).ok
        assert verify_proof_v1(formula, proof,
                               engine_cls=CountingPropagator).ok


@_SETTINGS
@given(cnf_formulas(max_vars=7, max_clauses=30),
       st.sampled_from(["1uip", "decision", "hybrid", "adaptive"]))
def test_all_learning_schemes_certified(formula, scheme):
    result = solve(formula, SolverOptions(learning=scheme))
    if result.is_sat:
        assert formula.is_satisfied_by(result.model)
    else:
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok
        assert ResolutionGraphProof.from_log(result.log).check().ok


@_SETTINGS
@given(cnf_formulas(max_vars=7, max_clauses=25))
def test_v2_checks_subset_of_v1(formula):
    result = solve(formula)
    if result.is_unsat:
        proof = ConflictClauseProof.from_log(result.log)
        v1 = verify_proof_v1(formula, proof)
        v2 = verify_proof_v2(formula, proof)
        assert v1.ok and v2.ok
        assert v2.num_checked <= v1.num_checked
        assert v2.num_checked + v2.num_skipped == len(proof)


@_SETTINGS
@given(cnf_formulas(max_vars=6, max_clauses=25))
def test_proof_clause_count_matches_stats(formula):
    result = solve(formula)
    if result.is_unsat:
        # Every conflict learns one clause except the terminal one,
        # which contributes the final unit + empty steps.
        assert result.log.num_deduced in (result.stats.conflicts + 1, 1)


@_SETTINGS
@given(st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=3, max_value=8),
       st.integers(min_value=5, max_value=60))
def test_rewrite_and_aig_preserve_semantics(seed, num_inputs, num_gates):
    """Random circuit == rewritten circuit == AIG, on random vectors."""
    import random as _random

    from repro.aig.convert import circuit_to_aig
    from repro.circuits.random_circuits import random_circuit
    from repro.circuits.rewrite import rewrite_circuit

    circuit = random_circuit(num_inputs, num_gates, seed=seed)
    optimized = rewrite_circuit(circuit)
    aig = circuit_to_aig(circuit)
    rng = _random.Random(seed ^ 0xA5A5)
    for _ in range(8):
        assignment = {net: rng.random() < 0.5 for net in circuit.inputs}
        want = {net: circuit.simulate(assignment)[net]
                for net in circuit.outputs}
        got_opt = optimized.simulate(assignment)
        assert [got_opt[net] for net in optimized.outputs] \
            == [want[net] for net in circuit.outputs]
        assert aig.simulate(assignment) == want
