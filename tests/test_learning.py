"""Unit tests for conflict analysis (learning schemes).

Besides crafted scenarios, the central property is checked here: the
recorded derivation chain of every proof step, folded through
``Clause.resolve``, reproduces exactly the learned clause — i.e. the
solver's resolution logging is complete and correct (including level-0
clearing).
"""

import random

import pytest

from repro.bcp.watched import WatchedPropagator
from repro.core.clause import Clause
from repro.core.literals import decode, encode
from repro.solver.cdcl import solve
from repro.solver.learning import (
    analyze_1uip,
    analyze_decision,
    analyze_final,
)

from tests.conftest import random_formula


def build_engine(clauses, num_vars=10):
    engine = WatchedPropagator(num_vars)
    for clause in clauses:
        engine.add_clause([encode(lit) for lit in clause])
    return engine


class TestAnalyze1Uip:
    def test_simple_uip(self):
        # Decision 1 forces 2 and 3, which conflict in clause (-2 -3).
        engine = build_engine([[-1, 2], [-1, 3], [-2, -3]])
        engine.assume(encode(1))
        confl = engine.propagate()
        assert confl is not None
        analysis = analyze_1uip(engine, confl)
        assert analysis.literals == (-1,)
        assert analysis.backjump_level == 0
        assert len(analysis.antecedents) == len(analysis.pivots) + 1

    def test_rejects_level0(self):
        engine = build_engine([[1], [-1]])
        confl = engine.propagate()
        with pytest.raises(ValueError):
            analyze_1uip(engine, confl)

    def test_intermediate_uip(self):
        # Level 1: decision 1. Level 2: decision 4 forces 5; (1,5) force
        # 6 and 7 which conflict; the UIP is 5 (not the decision 4).
        engine = build_engine([[-4, 5], [-5, -1, 6], [-5, -1, 7],
                               [-6, -7]], num_vars=10)
        engine.assume(encode(1))
        assert engine.propagate() is None
        engine.assume(encode(4))
        confl = engine.propagate()
        assert confl is not None
        analysis = analyze_1uip(engine, confl)
        assert Clause(analysis.literals) == Clause([-5, -1])
        assert analysis.backjump_level == 1
        # Asserting literal is the negation of the UIP.
        assert decode(analysis.learnt_enc[0]) == -5

    def test_level0_literals_resolved_away(self):
        # Unit clause sets 9 at level 0; the conflict involves -9.
        engine = build_engine([[9], [-1, 2], [-2, -9, 3], [-3, -2]],
                              num_vars=9)
        assert engine.propagate() is None
        engine.assume(encode(1))
        confl = engine.propagate()
        assert confl is not None
        analysis = analyze_1uip(engine, confl)
        assert 9 not in {abs(lit) for lit in analysis.literals}
        # The chain must include the unit clause's resolution.
        assert 9 in analysis.pivots


class TestAnalyzeDecision:
    def test_only_decision_variables(self):
        # Ternary clauses block contrapositive propagation, so the
        # conflict genuinely involves both decisions.
        engine = build_engine([[-1, 2], [-3, 4], [-2, -4, 5],
                               [-2, -4, -5]], num_vars=6)
        engine.assume(encode(1))
        assert engine.propagate() is None
        engine.assume(encode(3))
        confl = engine.propagate()
        assert confl is not None
        analysis = analyze_decision(engine, confl)
        assert Clause(analysis.literals) == Clause([-1, -3])
        assert analysis.backjump_level == 1
        assert decode(analysis.learnt_enc[0]) == -3  # current decision

    def test_more_resolutions_than_1uip(self):
        """Global clauses need at least as many resolutions (paper §5)."""
        rng = random.Random(7)
        for _ in range(20):
            formula = random_formula(rng, 8, 30)
            r_local = solve(formula, learning="1uip")
            r_global = solve(formula, learning="decision")
            assert r_local.status == r_global.status
            if r_local.is_unsat:
                assert (r_global.log.resolution_node_count()
                        >= r_local.log.resolution_node_count() * 0.5)


class TestAnalyzeFinal:
    def test_unit_then_empty(self):
        engine = build_engine([[1], [-1, 2], [-2, -1]])
        confl = engine.propagate()
        assert confl is not None
        final = analyze_final(engine, confl)
        assert final.unit_step is not None
        literals, antecedents, pivots = final.unit_step
        assert len(literals) == 1
        assert len(antecedents) == len(pivots) + 1

    def test_empty_input_clause(self):
        engine = build_engine([[]])
        confl = engine.propagate()
        final = analyze_final(engine, confl)
        assert final.unit_step is None
        assert final.empty_antecedents == (confl,)
        assert final.empty_pivots == ()

    def test_conflicting_unit_pair(self):
        engine = build_engine([[5], [-5]])
        confl = engine.propagate()
        final = analyze_final(engine, confl)
        assert final.unit_step is not None
        (lit,), _, _ = final.unit_step
        assert abs(lit) == 5


class TestChainFoldProperty:
    """Fold every logged derivation chain; it must equal the clause."""

    @staticmethod
    def fold_chain(log, step):
        current = Clause(log.literals_of(step.antecedents[0]))
        for ref, pivot in zip(step.antecedents[1:], step.pivots):
            current = current.resolve(Clause(log.literals_of(ref)),
                                      pivot=pivot)
        return current

    @pytest.mark.parametrize("learning", ["1uip", "decision", "hybrid"])
    def test_chains_derive_their_clauses(self, learning):
        rng = random.Random(hash(learning) & 0xFFFF)
        checked_steps = 0
        for _ in range(40):
            formula = random_formula(rng, rng.randint(3, 9),
                                     rng.randint(12, 45))
            result = solve(formula, learning=learning)
            if not result.is_unsat:
                continue
            log = result.log
            for step in log.steps:
                derived = self.fold_chain(log, step)
                assert derived == Clause(step.literals), (
                    learning, step, formula.clauses)
                checked_steps += 1
        assert checked_steps > 20
