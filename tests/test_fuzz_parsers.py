"""Fuzz tests: parsers must reject garbage with typed errors, never
crash with anything else, and never accept-then-misbehave."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.circuits.bench_format import parse_bench
from repro.core.dimacs import parse_dimacs
from repro.core.exceptions import (
    CircuitError,
    DimacsParseError,
    ProofFormatError,
    ReproError,
)
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.proofs.drup import (
    ADD,
    DELETE,
    DrupEvent,
    DrupProof,
    format_drup,
    parse_drup,
)
from repro.proofs.trace_format import format_proof, parse_proof

# Text made of the tokens these formats actually use, plus junk.
_dimacs_alphabet = st.sampled_from(
    ["p", "cnf", "c", "%", "0", "1", "-1", "2", "-2", "3", "x", "\n",
     " ", "-", "p cnf 2 1", "1 -2 0"])
_dimacs_text = st.lists(_dimacs_alphabet, max_size=30).map(" ".join)

_proof_alphabet = st.sampled_from(
    ["p", "ccproof", "final_pair", "empty", "c", "0", "1", "-1", "7",
     "-7", "\n", " ", "p ccproof empty", "p ccproof final_pair",
     "1 0", "-1 0", "0"])
_proof_text = st.lists(_proof_alphabet, max_size=30).map(" ".join)

_bench_alphabet = st.sampled_from(
    ["INPUT(a)", "OUTPUT(y)", "y = AND(a, a)", "y = NOT(a)", "#x",
     "y", "=", "AND", "(", ")", "a", "\n", "INPUT", "OUTPUT",
     "z = FROB(a)", "q = DFF(a)"])
_bench_text = st.lists(_bench_alphabet, max_size=15).map("\n".join)


class TestDimacsFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_dimacs_text)
    @example("p cnf 1 1\n1 0")
    @example("1 0 0 0")
    def test_parse_or_typed_error(self, text):
        try:
            formula = parse_dimacs(text)
        except DimacsParseError:
            return
        # Accepted input must produce a well-formed formula.
        assert formula.num_vars >= 0
        for clause in formula:
            assert all(lit != 0 for lit in clause)

    @settings(max_examples=100, deadline=None)
    @given(_dimacs_text)
    def test_strict_mode_or_typed_error(self, text):
        try:
            parse_dimacs(text, strict=True)
        except DimacsParseError:
            pass


class TestProofFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_proof_text)
    @example("p ccproof final_pair\n1 0\n-1 0")
    def test_parse_or_typed_error(self, text):
        try:
            proof = parse_proof(text)
        except ProofFormatError:
            return
        proof.validate_structure()  # accepted proofs are well-formed

    def test_binary_garbage(self):
        with pytest.raises(ProofFormatError):
            parse_proof("\x00\x01\x02")


_literals = st.integers(min_value=-9, max_value=9).filter(
    lambda lit: lit != 0)
_clauses = st.lists(_literals, max_size=5).map(tuple)


@st.composite
def _final_pair_proofs(draw):
    body = draw(st.lists(_clauses, max_size=6))
    pivot = draw(_literals)
    return ConflictClauseProof(body + [(pivot,), (-pivot,)],
                               ENDING_FINAL_PAIR)


@st.composite
def _empty_ended_proofs(draw):
    body = draw(st.lists(_clauses, max_size=6))
    return ConflictClauseProof(body + [()], ENDING_EMPTY)


@st.composite
def _drup_traces(draw):
    events = [DrupEvent(draw(st.sampled_from([ADD, DELETE])),
                        draw(_clauses))
              for _ in range(draw(st.integers(0, 8)))]
    events.append(DrupEvent(ADD, ()))
    return DrupProof(events)


class TestRoundTrip:
    """format → parse is the identity on well-formed proofs: what the
    solver writes is exactly what an independent checker reads."""

    @settings(max_examples=100, deadline=None)
    @given(st.one_of(_final_pair_proofs(), _empty_ended_proofs()))
    def test_cc_proof_round_trip(self, proof):
        assert parse_proof(format_proof(proof)) == proof

    @settings(max_examples=100, deadline=None)
    @given(st.one_of(_final_pair_proofs(), _empty_ended_proofs()),
           st.text(alphabet=st.characters(
               blacklist_categories=["Cs", "Cc"]), max_size=40))
    def test_cc_proof_round_trip_with_comment(self, proof, comment):
        assert parse_proof(format_proof(proof, comment=comment)) == proof

    @settings(max_examples=100, deadline=None)
    @given(_drup_traces())
    def test_drup_round_trip(self, trace):
        assert parse_drup(format_drup(trace)) == trace


class TestByteLevelFuzz:
    """Raw bytes thrown at every parser raise only typed ReproError
    subclasses — the contract the CLI's error handler relies on."""

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=200))
    @example(b"p ccproof final_pair\n1 0\n-1")
    @example(b"\xff\xfe p cnf 1")
    @example(b"d 1 2 0\nd")
    def test_parsers_raise_only_typed_errors(self, data):
        text = data.decode("latin-1")
        for parser in (parse_dimacs, parse_proof, parse_drup):
            try:
                parser(text)
            except ReproError:
                pass


class TestBenchFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_bench_text)
    @example("INPUT(a)\nOUTPUT(y)\ny = NOT(a)")
    def test_parse_or_typed_error(self, text):
        try:
            circuit = parse_bench(text)
        except CircuitError:
            return
        # Accepted circuits simulate without crashing.
        assignment = {net: False for net in circuit.inputs}
        circuit.simulate(assignment)
