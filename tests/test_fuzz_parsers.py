"""Fuzz tests: parsers must reject garbage with typed errors, never
crash with anything else, and never accept-then-misbehave."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.circuits.bench_format import parse_bench
from repro.core.dimacs import parse_dimacs
from repro.core.exceptions import (
    CircuitError,
    DimacsParseError,
    ProofFormatError,
)
from repro.proofs.trace_format import parse_proof

# Text made of the tokens these formats actually use, plus junk.
_dimacs_alphabet = st.sampled_from(
    ["p", "cnf", "c", "%", "0", "1", "-1", "2", "-2", "3", "x", "\n",
     " ", "-", "p cnf 2 1", "1 -2 0"])
_dimacs_text = st.lists(_dimacs_alphabet, max_size=30).map(" ".join)

_proof_alphabet = st.sampled_from(
    ["p", "ccproof", "final_pair", "empty", "c", "0", "1", "-1", "7",
     "-7", "\n", " ", "p ccproof empty", "p ccproof final_pair",
     "1 0", "-1 0", "0"])
_proof_text = st.lists(_proof_alphabet, max_size=30).map(" ".join)

_bench_alphabet = st.sampled_from(
    ["INPUT(a)", "OUTPUT(y)", "y = AND(a, a)", "y = NOT(a)", "#x",
     "y", "=", "AND", "(", ")", "a", "\n", "INPUT", "OUTPUT",
     "z = FROB(a)", "q = DFF(a)"])
_bench_text = st.lists(_bench_alphabet, max_size=15).map("\n".join)


class TestDimacsFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_dimacs_text)
    @example("p cnf 1 1\n1 0")
    @example("1 0 0 0")
    def test_parse_or_typed_error(self, text):
        try:
            formula = parse_dimacs(text)
        except DimacsParseError:
            return
        # Accepted input must produce a well-formed formula.
        assert formula.num_vars >= 0
        for clause in formula:
            assert all(lit != 0 for lit in clause)

    @settings(max_examples=100, deadline=None)
    @given(_dimacs_text)
    def test_strict_mode_or_typed_error(self, text):
        try:
            parse_dimacs(text, strict=True)
        except DimacsParseError:
            pass


class TestProofFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_proof_text)
    @example("p ccproof final_pair\n1 0\n-1 0")
    def test_parse_or_typed_error(self, text):
        try:
            proof = parse_proof(text)
        except ProofFormatError:
            return
        proof.validate_structure()  # accepted proofs are well-formed

    def test_binary_garbage(self):
        with pytest.raises(ProofFormatError):
            parse_proof("\x00\x01\x02")


class TestBenchFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_bench_text)
    @example("INPUT(a)\nOUTPUT(y)\ny = NOT(a)")
    def test_parse_or_typed_error(self, text):
        try:
            circuit = parse_bench(text)
        except CircuitError:
            return
        # Accepted circuits simulate without crashing.
        assignment = {net: False for net in circuit.inputs}
        circuit.simulate(assignment)
