"""Tests for NiVER-style bounded variable elimination."""

import random

import pytest

from repro.core.clause import Clause
from repro.core.formula import CnfFormula
from repro.preprocess.elimination import (
    EliminationStep,
    eliminate_variables,
    extend_model,
)
from repro.preprocess.lifting import solve_with_preprocessing
from repro.preprocess.preprocessor import preprocess
from repro.solver.dpll import dpll_solve
from repro.verify.verification import verify_proof_v2

from tests.conftest import random_formula


def clauses_of(*lits_lists):
    return [Clause(lits) for lits in lits_lists]


class TestEliminateVariables:
    def test_simple_chain(self):
        # v=2 links the two clauses; eliminating it yields (1 3).
        clauses = clauses_of([1, 2], [-2, 3])
        new, steps = eliminate_variables(clauses, protected=set())
        assert any(step.variable == 2 for step in steps)
        assert Clause([1, 3]) in new or not new

    def test_pure_variable_clauses_dropped(self):
        # 5 occurs only positively: no resolvents, clauses vanish.
        clauses = clauses_of([5, 1], [5, 2], [1, 2])
        new, steps = eliminate_variables(clauses, protected={1, 2})
        variables = {step.variable for step in steps}
        assert 5 in variables
        assert Clause([5, 1]) not in new

    def test_protected_vars_kept(self):
        clauses = clauses_of([1, 2], [-2, 3])
        new, steps = eliminate_variables(clauses, protected={1, 2, 3})
        assert not steps
        assert new == clauses

    def test_growth_bound_respected(self):
        # Variable 1 has 3x3 occurrences producing up to 9 resolvents
        # vs 6 originals: elimination must be declined.
        positive = [[1, i] for i in (10, 11, 12)]
        negative = [[-1, -j] for j in (20, 21, 22)]
        clauses = clauses_of(*(positive + negative))
        protected = set(range(10, 23))
        new, steps = eliminate_variables(clauses, protected)
        assert all(step.variable != 1 for step in steps)

    def test_empty_resolvent_detected(self):
        clauses = clauses_of([1], [-1])
        new, steps = eliminate_variables(clauses, protected=set())
        assert any(clause.is_empty() for clause in new)


class TestExtendModel:
    def test_forced_true(self):
        step = EliminationStep(
            5, (Clause([5, 1]),), (Clause([-5, 2]),),
            (Clause([1, 2]),))
        model = extend_model([step], {1: False, 2: True})
        assert model[5] is True  # (5 1) needs 5 with 1 false

    def test_free_defaults_false(self):
        step = EliminationStep(
            5, (Clause([5, 1]),), (Clause([-5, 2]),),
            (Clause([1, 2]),))
        model = extend_model([step], {1: True, 2: True})
        assert model[5] is False


class TestIntegration:
    @pytest.mark.parametrize("seed", range(6))
    def test_equisatisfiable(self, seed):
        rng = random.Random(6000 + seed)
        for _ in range(20):
            formula = random_formula(rng, rng.randint(3, 9),
                                     rng.randint(4, 30))
            result = preprocess(formula, eliminate=True)
            expected = dpll_solve(formula).status
            if result.status != "UNKNOWN":
                assert result.status == expected, formula.clauses
            else:
                assert dpll_solve(result.simplified).status == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_lifted_artifacts(self, seed):
        rng = random.Random(6500 + seed)
        for _ in range(20):
            formula = random_formula(rng, rng.randint(3, 9),
                                     rng.randint(6, 35))
            solved, pre, proof = solve_with_preprocessing(
                formula, eliminate=True)
            if solved.is_sat:
                assert formula.is_satisfied_by(solved.model), \
                    formula.clauses
            else:
                assert verify_proof_v2(formula, proof).ok, \
                    formula.clauses

    def test_elimination_actually_fires(self):
        rng = random.Random(99)
        fired = False
        for _ in range(30):
            formula = random_formula(rng, 10, 18)
            result = preprocess(formula, eliminate=True)
            if result.eliminations:
                fired = True
                break
        assert fired

    def test_ve_refutation_lifts(self):
        # VE alone refutes (1)(−1) buried under a fresh variable layer.
        formula = CnfFormula([[2], [-2]])
        result = preprocess(formula, probe=False, eliminate=True)
        # Units already refute this; force the VE path instead:
        formula2 = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        ve_only = preprocess(formula2, probe=False, subsume=False,
                             eliminate=True)
        assert ve_only.status == "UNSAT"
        from repro.preprocess.lifting import lift_proof
        proof = lift_proof(ve_only)
        assert verify_proof_v2(formula2, proof).ok
        del result
