"""Differential tests for the incremental backward checker.

The incremental checker (persistent root trail + clause retirement) and
the process-parallel verification1 backend must be observationally
equivalent to the original rebuild-per-check path: same verdicts, same
first-failure indices, and — for verification2 — valid unsat cores.
BCP conflict *existence* is order-invariant, but which conflicting
clause surfaces first is not, so cores/marked sets are checked for
validity rather than bit-equality.
"""

import pytest

from repro.bcp.counting import CountingPropagator
from repro.bcp.watched import WatchedPropagator
from repro.benchgen.php import pigeonhole
from repro.benchgen.random_unsat import random_ksat
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.checker import ProofChecker
from repro.verify.parallel import make_shards
from repro.verify.verification import (
    verify_proof,
    verify_proof_v1,
    verify_proof_v2,
)

ENGINES = [WatchedPropagator, CountingPropagator]


def proof_of(formula):
    result = solve(formula)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


def _instances():
    """Solved instances covering structured and random refutations."""
    cases = []
    for n in (3, 4):
        formula = pigeonhole(n)
        cases.append((f"php{n}", formula, proof_of(formula)))
    for seed in (0, 1, 4):
        formula = random_ksat(20, 100, k=3, seed=seed)
        result = solve(formula)
        if result.is_unsat:
            cases.append((f"rnd{seed}", formula,
                          ConflictClauseProof.from_log(result.log)))
    return cases


INSTANCES = _instances()


def corrupt(proof):
    """Replace a middle clause with one that is not implied."""
    clauses = [list(c) for c in proof]
    index = len(clauses) // 2
    fresh_var = proof.max_var() + 1
    clauses[index] = [fresh_var]
    return index, ConflictClauseProof(clauses, proof.ending)


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestVerification1Differential:
    @pytest.mark.parametrize("name,formula,proof", INSTANCES)
    def test_correct_proofs_agree(self, engine_cls, name, formula,
                                  proof):
        reports = [
            verify_proof_v1(formula, proof, engine_cls,
                            order=order, mode=mode)
            for order in ("backward", "forward")
            for mode in ("rebuild", "incremental")
        ]
        reports.append(verify_proof_v1(formula, proof, engine_cls,
                                       mode="incremental", jobs=2))
        assert all(r.ok for r in reports), name
        assert all(r.num_checked == len(proof) for r in reports)

    @pytest.mark.parametrize("name,formula,proof", INSTANCES[:3])
    def test_corrupted_proofs_agree_on_failure_index(self, engine_cls,
                                                     name, formula,
                                                     proof):
        _, bad = corrupt(proof)
        per_order = {}
        for order in ("backward", "forward"):
            failed = {
                verify_proof_v1(formula, bad, engine_cls, order=order,
                                mode=mode).failed_clause_index
                for mode in ("rebuild", "incremental")
            }
            failed.add(verify_proof_v1(
                formula, bad, engine_cls, order=order,
                mode="incremental", jobs=2).failed_clause_index)
            assert len(failed) == 1, (name, order, failed)
            per_order[order] = failed.pop()
            assert per_order[order] is not None

    def test_incremental_reduces_propagation_work(self, engine_cls):
        formula = pigeonhole(4)
        proof = proof_of(formula)
        rebuild = verify_proof_v1(formula, proof, engine_cls,
                                  mode="rebuild").bcp_counters
        incremental = verify_proof_v1(formula, proof, engine_cls,
                                      mode="incremental").bcp_counters
        assert incremental["assignments"] + incremental["watch_visits"] \
            < rebuild["assignments"] + rebuild["watch_visits"]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestVerification2Differential:
    @pytest.mark.parametrize("name,formula,proof", INSTANCES)
    def test_verdicts_and_core_validity(self, engine_cls, name, formula,
                                        proof):
        rebuild = verify_proof_v2(formula, proof, engine_cls,
                                  mode="rebuild")
        incremental = verify_proof_v2(formula, proof, engine_cls,
                                      mode="incremental")
        assert rebuild.ok and incremental.ok, name
        for report in (rebuild, incremental):
            # Every reported core must itself be unsatisfiable.
            assert solve(report.core.as_formula()).is_unsat, name
            assert report.marked_proof_indices

    @pytest.mark.parametrize("name,formula,proof", INSTANCES[:2])
    def test_corrupted_proofs_rejected(self, engine_cls, name, formula,
                                       proof):
        _, bad = corrupt(proof)
        for mode in ("rebuild", "incremental"):
            report = verify_proof_v2(formula, bad, engine_cls,
                                     mode=mode)
            assert not report.ok, (name, mode)


class TestIncrementalCheckerInternals:
    def test_root_conflict_short_circuits_checks(self):
        # F alone is unit-refutable, so every check trivially conflicts.
        formula = CnfFormula([[1], [-1, 2], [-2, -1]])
        proof = ConflictClauseProof([()], ENDING_EMPTY)
        for mode in ("rebuild", "incremental"):
            assert verify_proof_v1(formula, proof, mode=mode).ok

    def test_falsified_unit_sets_root_conflict(self):
        formula = CnfFormula([[1], [-1, 2]])
        proof = ConflictClauseProof([(-2,), (2,)], ENDING_FINAL_PAIR)
        checker = ProofChecker(formula, proof, mode="incremental")
        outcome = checker.check_clause(1)
        checker.reset()
        assert outcome.conflict
        assert checker._root_conflict is not None

    def test_tautological_clause_has_no_responsible_cid(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(3, -3), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        for mode in ("rebuild", "incremental"):
            checker = ProofChecker(formula, proof, mode=mode)
            outcome = checker.check_clause(0)
            checker.reset()
            assert outcome.conflict
            assert outcome.confl_cid is None

    def test_retire_rejects_rising_ceiling(self):
        formula = pigeonhole(3)
        proof = proof_of(formula)
        checker = ProofChecker(formula, proof, mode="incremental",
                               retire=True)
        checker.check_clause(len(proof) - 1)
        checker.reset()
        checker.check_clause(0)
        checker.reset()
        with pytest.raises(ValueError, match="monotonically"):
            checker.check_clause(len(proof) - 1)

    def test_non_monotone_order_without_retire(self):
        formula = pigeonhole(3)
        proof = proof_of(formula)
        checker = ProofChecker(formula, proof, mode="incremental",
                               retire=False)
        rebuild = ProofChecker(formula, proof, mode="rebuild")
        # Zig-zag over the proof: lower, raise, lower again.
        order = [len(proof) - 1, 0, len(proof) // 2, 1,
                 len(proof) - 2, 0]
        for index in order:
            expected = rebuild.check_clause(index)
            rebuild.reset()
            outcome = checker.check_clause(index)
            checker.reset()
            assert outcome.conflict == expected.conflict, index

    def test_unknown_mode_rejected(self):
        formula = CnfFormula([[1], [-1]])
        proof = ConflictClauseProof([()], ENDING_EMPTY)
        with pytest.raises(ValueError, match="mode"):
            ProofChecker(formula, proof, mode="eager")
        with pytest.raises(ValueError, match="mode"):
            verify_proof_v1(formula, proof, mode="eager")
        with pytest.raises(ValueError, match="mode"):
            verify_proof_v2(formula, proof, mode="eager")


class TestDispatcherForwarding:
    """verify_proof() must forward order/mode/jobs (it used to drop
    ``order`` silently)."""

    def setup_method(self):
        self.formula = pigeonhole(4)
        self.index, self.bad = corrupt(proof_of(self.formula))

    def test_order_is_forwarded(self):
        backward = verify_proof(self.formula, self.bad,
                                procedure="verification1",
                                order="backward")
        forward = verify_proof(self.formula, self.bad,
                               procedure="verification1",
                               order="forward")
        # A forward scan stops at the corrupted clause itself; the
        # backward scan first meets a later clause that depended on it.
        assert forward.failed_clause_index == self.index
        assert backward.failed_clause_index \
            == verify_proof_v1(self.formula, self.bad,
                               order="backward").failed_clause_index

    def test_mode_and_jobs_are_forwarded(self):
        report = verify_proof(self.formula, self.bad,
                              procedure="verification1",
                              mode="incremental", jobs=2)
        assert report.mode == "incremental"
        assert report.jobs == 2
        assert report.failed_clause_index \
            == verify_proof_v1(self.formula, self.bad,
                               order="backward").failed_clause_index

    def test_verification2_rejects_v1_only_options(self):
        proof = proof_of(self.formula)
        with pytest.raises(ValueError, match="backward"):
            verify_proof(self.formula, proof, order="forward")
        with pytest.raises(ValueError, match="sequential"):
            verify_proof(self.formula, proof, jobs=2)


class TestParallelBackend:
    def test_shards_cover_range_contiguously(self):
        for num, jobs in ((0, 4), (1, 4), (7, 2), (100, 3), (5, 8)):
            shards = make_shards(num, jobs)
            covered = [i for lo, hi in shards for i in range(lo, hi)]
            assert covered == list(range(num))

    def test_parallel_matches_sequential_on_failure(self):
        formula = pigeonhole(4)
        index, bad = corrupt(proof_of(formula))
        sequential = verify_proof_v1(formula, bad, order="backward")
        parallel = verify_proof_v1(formula, bad, order="backward",
                                   mode="incremental", jobs=3)
        assert not sequential.ok and not parallel.ok
        assert parallel.failed_clause_index \
            == sequential.failed_clause_index

    def test_parallel_report_counters_summed(self):
        formula = pigeonhole(4)
        proof = proof_of(formula)
        report = verify_proof_v1(formula, proof, mode="incremental",
                                 jobs=2)
        assert report.ok
        assert report.jobs == 2
        assert report.bcp_counters["assignments"] > 0
