"""Documentation consistency checks (guard against drift)."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


class TestReadme:
    def test_mentions_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"{example.name} not in README"

    def test_mentions_key_commands(self):
        readme = (REPO / "README.md").read_text()
        for command in ("python -m repro.experiments.table1",
                        "python -m repro.experiments.table2",
                        "python -m repro.experiments.table3",
                        "pytest benchmarks/ --benchmark-only",
                        "pytest tests/"):
            assert command in readme, command

    def test_links_resolve(self):
        readme = (REPO / "README.md").read_text()
        for target in ("EXPERIMENTS.md", "DESIGN.md",
                       "docs/proof_format.md", "docs/verification.md",
                       "docs/robustness.md", "docs/observability.md",
                       "docs/proof_insight.md"):
            assert target in readme
            assert (REPO / target).exists(), target

    def test_robustness_section(self):
        readme = (REPO / "README.md").read_text()
        assert "## Robustness" in readme


class TestRobustnessDoc:
    def test_error_taxonomy_is_complete(self):
        """Every ReproError subclass the library defines is documented."""
        import repro.core.exceptions as exceptions
        from repro.core.exceptions import ReproError

        doc = (REPO / "docs" / "robustness.md").read_text()
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if (isinstance(obj, type) and issubclass(obj, ReproError)
                    and obj is not ReproError):
                assert name in doc, f"{name} missing from robustness.md"

    def test_exit_codes_documented(self):
        from repro import cli

        doc = (REPO / "docs" / "robustness.md").read_text()
        codes = {name: getattr(cli, name) for name in dir(cli)
                 if name.startswith("EXIT_")}
        assert codes  # the CLI defines typed exit codes
        for name, value in codes.items():
            assert f"| {value} " in doc, \
                f"exit code {value} ({name}) missing from robustness.md"

    def test_budget_semantics_documented(self):
        doc = (REPO / "docs" / "robustness.md").read_text()
        for term in ("max_props", "timeout", "resource_limit_exceeded",
                     "assignments + clause_visits"):
            assert term in doc

    def test_mutation_harness_documented(self):
        doc = (REPO / "docs" / "robustness.md").read_text()
        for term in ("run_differential", "ProofMutator",
                     "EXPECT_REJECT_ALL", "EXPECT_ACCEPT"):
            assert term in doc

    def test_referenced_test_files_exist(self):
        doc = (REPO / "docs" / "robustness.md").read_text()
        for piece in doc.split("`"):
            piece = piece.split("::")[0]
            if piece.startswith(("tests/", "benchmarks/")):
                assert (REPO / piece).exists(), piece


class TestObservabilityDoc:
    def test_schemas_and_flags_documented(self):
        doc = (REPO / "docs" / "observability.md").read_text()
        for term in ("repro.obs.metrics/v1", "repro.obs.trace/v1",
                     "repro.obs.timeline/v1", "repro.obs.live/v1",
                     "--metrics-out", "--trace-out", "--progress",
                     "--stats", "deterministic_view",
                     "repro obs timeline", "repro obs top",
                     "--live-dir", "--min-utilization",
                     "rebase_epoch", "critical path",
                     "python -m repro.obs.validate"):
            assert term in doc, term

    def test_metric_catalogue_matches_code(self):
        """Every metric name the verify layer registers is in the
        catalogue (families documented via their prefix count too)."""
        import re

        doc = (REPO / "docs" / "observability.md").read_text()
        source = ""
        for path in (REPO / "src" / "repro" / "verify").glob("*.py"):
            source += path.read_text()
        registered = set(re.findall(r'"(repro_[a-z_]+)"', source))
        documented = set(re.findall(r"`(repro_[a-z_*<>]+)`", doc))
        prefixes = tuple(name.split("*")[0].split("<")[0]
                         for name in documented)
        for name in registered:
            assert name in documented or name.startswith(prefixes), \
                f"{name} missing from observability.md catalogue"

    def test_referenced_test_files_exist(self):
        doc = (REPO / "docs" / "observability.md").read_text()
        for piece in doc.split("`"):
            piece = piece.split("::")[0]
            if piece.startswith(("tests/", "benchmarks/")):
                assert (REPO / piece).exists(), piece


class TestProofInsightDoc:
    def test_schemas_flags_and_formats_documented(self):
        doc = (REPO / "docs" / "proof_insight.md").read_text()
        for term in ("repro.obs.depgraph/v1", "repro.obs.analytics/v1",
                     "repro.obs.run/v1", "--depgraph-out",
                     "--depgraph-dot", "--analytics-out", "--profile",
                     "history.jsonl", "$REPRO_HISTORY_DIR",
                     "repro obs history", "repro obs compare",
                     "check-regression", "--max-props-drop-pct"):
            assert term in doc, term

    def test_cross_linked(self):
        assert "proof_insight.md" in \
            (REPO / "docs" / "observability.md").read_text()
        assert "docs/proof_insight.md" in (REPO / "README.md").read_text()

    def test_referenced_test_files_exist(self):
        doc = (REPO / "docs" / "proof_insight.md").read_text()
        for piece in doc.split("`"):
            piece = piece.split("::")[0]
            if piece.startswith(("tests/", "benchmarks/", "ci/")):
                assert (REPO / piece).exists(), piece

    def test_ci_baseline_is_a_valid_fingerprint(self):
        from repro.obs.insight import check_regression, load_fingerprint

        baseline = load_fingerprint(REPO / "ci"
                                    / "baseline_fingerprint.json")
        # A fingerprint never regresses against itself.
        assert check_regression(baseline, baseline, max_wall_pct=0,
                                max_props_drop_pct=0,
                                max_phase_pct=0) == []


class TestExamples:
    def test_proof_toolkit_runs(self, tmp_path):
        """The walkthrough (incl. the insight section) stays runnable."""
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        result = subprocess.run(
            [sys.executable, str(REPO / "examples" / "proof_toolkit.py")],
            capture_output=True, text=True, timeout=120,
            cwd=tmp_path, env=env)
        assert result.returncode == 0, result.stderr
        for line in ("dependency graph:", "shape from verifier evidence:",
                     "local:", "arbiter mutual exclusion"):
            assert line in result.stdout, result.stdout


class TestDesign:
    def test_lists_all_three_tables(self):
        design = (REPO / "DESIGN.md").read_text()
        for table in ("Table 1", "Table 2", "Table 3"):
            assert table in design

    def test_bench_files_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for line in design.splitlines():
            if "`benchmarks/" not in line:
                continue
            for piece in line.split("`"):
                if piece.startswith("benchmarks/"):
                    assert (REPO / piece).exists(), piece

    def test_confirms_paper_identity(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "Goldberg" in design and "Novikov" in design
        assert "DATE 2003" in design


class TestExperiments:
    def test_covers_all_tables(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for heading in ("## Table 1", "## Table 2", "## Table 3",
                        "## Ablations"):
            assert heading in experiments

    def test_every_table_instance_reported(self):
        from repro.benchgen.registry import (
            TABLE1_INSTANCES,
            TABLE3_INSTANCES,
        )

        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for name in TABLE1_INSTANCES + TABLE3_INSTANCES:
            assert name in experiments, name


class TestBenchmarkCollection:
    def test_bench_files_collected_by_pytest(self):
        """Regression: bench_*.py must match pytest's file pattern."""
        pyproject = (REPO / "pyproject.toml").read_text()
        assert "bench_*.py" in pyproject
