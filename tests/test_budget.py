"""Resource budgets: exhaustion must surface as a clean
``resource_limit_exceeded`` report with partial progress — never as an
exception escaping the public API, and never as a wrong verdict."""

import pytest

from repro.bcp.engine import PropagationCounters
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.drup import DrupProof
from repro.solver.cdcl import solve
from repro.verify import (
    RESOURCE_LIMIT_EXCEEDED,
    CheckBudget,
    check_drup,
    verify_proof,
    verify_proof_v1,
    verify_proof_v2,
)


@pytest.fixture(scope="module")
def instance():
    formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2], [3, 4]])
    result = solve(formula)
    return (formula, ConflictClauseProof.from_log(result.log),
            DrupProof.from_log(result.log))


class TestCheckBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckBudget(timeout=0)
        with pytest.raises(ValueError):
            CheckBudget(timeout=-1.5)
        with pytest.raises(ValueError):
            CheckBudget(max_props=0)
        with pytest.raises(ValueError):
            CheckBudget(max_props=-3)

    def test_unlimited(self):
        assert CheckBudget().unlimited
        assert not CheckBudget(max_props=10).unlimited

    def test_meter_accounting(self):
        counters = PropagationCounters()
        meter = CheckBudget(max_props=10).start(counters)
        assert meter.exhausted(counters) is None
        counters.assignments = 6
        counters.clause_visits = 5
        reason = meter.exhausted(counters)
        assert reason is not None and "budget" in reason

    def test_meter_rebase_keeps_deadline(self):
        counters = PropagationCounters()
        meter = CheckBudget(timeout=3600).start(counters)
        rebased = meter.rebase(PropagationCounters())
        assert rebased.deadline == meter.deadline

    def test_memory_axis_validation(self):
        with pytest.raises(ValueError):
            CheckBudget(max_live_clauses=0)
        with pytest.raises(ValueError):
            CheckBudget(max_live_clauses=-1)
        with pytest.raises(ValueError):
            CheckBudget(max_bytes=0)
        assert not CheckBudget(max_live_clauses=5).unlimited
        assert not CheckBudget(max_bytes=1024).unlimited

    def test_memory_axes_trip_only_when_measured(self):
        """The memory axes are opt-in per call: a caller that never
        reports live totals (the non-streaming checkers) cannot trip
        them."""
        counters = PropagationCounters()
        meter = CheckBudget(max_live_clauses=3,
                            max_bytes=100).start(counters)
        assert meter.exhausted(counters) is None
        assert meter.exhausted(counters, live_clauses=3) is None
        reason = meter.exhausted(counters, live_clauses=4)
        assert reason is not None and "live-clause budget" in reason
        assert meter.exhausted(counters, live_bytes=100) is None
        reason = meter.exhausted(counters, live_bytes=101)
        assert reason is not None and "memory budget" in reason


class TestBudgetedVerification:
    @pytest.mark.parametrize("order", ["backward", "forward"])
    @pytest.mark.parametrize("mode", ["rebuild", "incremental"])
    def test_v1_props_budget(self, instance, order, mode):
        formula, proof, _ = instance
        report = verify_proof_v1(formula, proof, order=order, mode=mode,
                                 budget=CheckBudget(max_props=1))
        assert report.outcome == RESOURCE_LIMIT_EXCEEDED
        assert report.exhausted and not report.ok
        assert report.stopped_at_index is not None
        assert report.num_checked < len(proof)
        assert "budget" in report.failure_reason

    def test_v1_generous_budget_is_invisible(self, instance):
        formula, proof, _ = instance
        report = verify_proof_v1(
            formula, proof,
            budget=CheckBudget(timeout=3600, max_props=10**9))
        assert report.ok and not report.exhausted

    def test_v2_props_budget(self, instance):
        formula, proof, _ = instance
        report = verify_proof_v2(formula, proof,
                                 budget=CheckBudget(max_props=1))
        assert report.exhausted
        assert report.core is None  # partial runs never claim a core

    def test_dispatcher_threads_budget(self, instance):
        formula, proof, _ = instance
        report = verify_proof(formula, proof,
                              budget=CheckBudget(max_props=1))
        assert report.exhausted

    def test_drup_timeout_budget(self, instance):
        formula, _, drup = instance
        report = check_drup(formula, drup,
                            budget=CheckBudget(timeout=1e-9))
        assert report.exhausted and not report.ok
        assert report.stopped_at_event is not None
        assert "budget" in report.failure_reason

    def test_drup_generous_budget_is_invisible(self, instance):
        formula, _, drup = instance
        report = check_drup(formula, drup,
                            budget=CheckBudget(timeout=3600))
        assert report.ok and not report.exhausted
