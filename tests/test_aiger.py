"""Tests for ASCII AIGER I/O."""

import random

import pytest

from repro.aig.aig import Aig
from repro.aig.aiger import (
    format_aiger,
    parse_aiger,
    read_aiger,
    write_aiger,
)
from repro.aig.convert import circuit_to_aig
from repro.circuits.library import ripple_carry_adder, wallace_multiplier
from repro.core.exceptions import CircuitError


def simple_aig():
    aig = Aig("t")
    a = aig.add_input("a")
    b = aig.add_input("b")
    aig.set_output("y", aig.AND(a, b) ^ 1)  # NAND
    return aig


class TestFormat:
    def test_header(self):
        text = format_aiger(simple_aig())
        assert text.startswith("aag 3 2 0 1 1\n")

    def test_symbol_table(self):
        text = format_aiger(simple_aig())
        assert "i0 a" in text
        assert "o0 y" in text

    def test_comment(self):
        text = format_aiger(simple_aig(), comment="hello")
        assert text.rstrip().endswith("c\nhello")

    def test_rhs_ordering(self):
        # AIGER requires rhs0 >= rhs1 on AND lines.
        text = format_aiger(simple_aig())
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 3 and all(p.isdigit() for p in parts):
                assert int(parts[1]) >= int(parts[2])


class TestParse:
    def test_roundtrip_simple(self):
        original = simple_aig()
        restored = parse_aiger(format_aiger(original))
        for x in (False, True):
            for y in (False, True):
                assert (restored.simulate({"a": x, "b": y})
                        == original.simulate({"a": x, "b": y}))

    @pytest.mark.parametrize("builder", [
        lambda: ripple_carry_adder(4),
        lambda: wallace_multiplier(3),
    ])
    def test_roundtrip_library(self, builder):
        original = circuit_to_aig(builder())
        restored = parse_aiger(format_aiger(original))
        assert restored.num_ands == original.num_ands
        rng = random.Random(0)
        for _ in range(30):
            assignment = {name: rng.random() < 0.5
                          for name in original.inputs}
            assert (restored.simulate(assignment)
                    == original.simulate(assignment))

    def test_handwritten_example(self):
        # The AND of two inputs, from the AIGER paper.
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n"
        aig = parse_aiger(text)
        assert aig.num_inputs == 2
        assert aig.num_ands == 1
        assert aig.simulate({"i0": True, "i1": True})["o0"] is True
        assert aig.simulate({"i0": True, "i1": False})["o0"] is False

    def test_constant_output(self):
        # Output literal 1 = constant true.
        text = "aag 0 0 0 1 0\n1\n"
        aig = parse_aiger(text)
        assert aig.simulate({})["o0"] is True

    def test_latches_rejected(self):
        with pytest.raises(CircuitError, match="latch"):
            parse_aiger("aag 3 1 1 1 0\n2\n4 2\n4\n")

    def test_missing_header(self):
        with pytest.raises(CircuitError, match="aag"):
            parse_aiger("hello\n")

    def test_truncated(self):
        with pytest.raises(CircuitError, match="truncated"):
            parse_aiger("aag 3 2 0 1 1\n2\n")

    def test_odd_input_literal_rejected(self):
        with pytest.raises(CircuitError, match="invalid input"):
            parse_aiger("aag 1 1 0 0 0\n3\n")

    def test_forward_reference_rejected(self):
        with pytest.raises(CircuitError, match="before definition"):
            parse_aiger("aag 2 1 0 1 1\n2\n4\n4 6 2\n")


class TestFileIo:
    def test_write_read(self, tmp_path):
        path = tmp_path / "t.aag"
        write_aiger(simple_aig(), path, comment="roundtrip")
        aig = read_aiger(path)
        assert aig.num_ands == 1
