"""End-to-end workflows: the full generate → solve → write → read →
verify → extract pipeline, including on-disk roundtrips — the workflow
the paper describes (conflict clauses streamed to disk, verified by an
independent program)."""

import pytest

from repro import (
    CnfFormula,
    ConflictClauseProof,
    ResolutionGraphProof,
    compare_proof_sizes,
    extract_core,
    parse_dimacs,
    read_dimacs,
    read_proof,
    solve,
    validate_core,
    verify_proof,
    verify_proof_v1,
    verify_proof_v2,
    write_dimacs,
    write_proof,
)
from repro.benchgen.php import pigeonhole
from repro.benchgen.xor_chains import parity_contradiction
from repro.circuits.library import parity_chain, parity_tree
from repro.circuits.miter import equivalence_formula
from repro.bmc.models import arbiter_instance


class TestDiskRoundtrip:
    def test_full_workflow(self, tmp_path):
        formula = pigeonhole(4)
        cnf_path = tmp_path / "php4.cnf"
        proof_path = tmp_path / "php4.ccp"

        write_dimacs(formula, cnf_path, comment="pigeonhole 4")
        loaded = read_dimacs(cnf_path, strict=True)

        result = solve(loaded)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        write_proof(proof, proof_path, comment="by repro CDCL")

        # An "independent checker" session: re-read both files.
        checker_formula = read_dimacs(cnf_path)
        checker_proof = read_proof(proof_path)
        report = verify_proof(checker_formula, checker_proof)
        assert report.ok
        assert validate_core(report.core)

    def test_verifier_catches_tampered_file(self, tmp_path):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        result = solve(formula)
        proof = ConflictClauseProof.from_log(result.log)
        proof_path = tmp_path / "p.ccp"
        write_proof(proof, proof_path)
        # Tamper: replace the proof body with an unjustified clause.
        text = proof_path.read_text().splitlines()
        tampered = [text[0], "5 0", text[-2], text[-1]]
        proof_path.write_text("\n".join(tampered) + "\n")
        loaded = read_proof(proof_path)
        report = verify_proof_v1(formula, loaded)
        assert not report.ok


class TestDomainPipelines:
    def test_equivalence_checking_flow(self):
        formula = equivalence_formula(parity_chain(10), parity_tree(10))
        result = solve(formula)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        report = verify_proof_v2(formula, proof)
        assert report.ok
        graph = ResolutionGraphProof.from_log(result.log)
        assert graph.check().ok
        sizes = compare_proof_sizes(result.log)
        assert sizes.num_conflict_clauses == len(proof)

    def test_bmc_flow(self):
        formula = arbiter_instance(4, 6)
        result = solve(formula)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok

    def test_core_reduces_parity_instance(self):
        formula = parity_contradiction(10)
        # Pad with irrelevant clauses.
        padded = formula.copy()
        base = formula.num_vars
        for i in range(10):
            padded.add_clause([base + i + 1, base + i + 2])
        result = solve(padded)
        assert result.is_unsat
        core = extract_core(padded,
                            ConflictClauseProof.from_log(result.log))
        assert core.size <= formula.num_clauses
        assert validate_core(core)


class TestDocstringExample:
    def test_readme_quickstart(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        result = solve(formula)
        assert result.status == "UNSAT"
        proof = ConflictClauseProof.from_log(result.log)
        report = verify_proof(formula, proof)
        assert report.ok
        assert report.core is not None

    def test_dimacs_string_entry_point(self):
        formula = parse_dimacs("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n"
                               "-1 -2 0\n")
        result = solve(formula)
        assert result.is_unsat
