"""Tests for k-induction (certified unbounded model checking)."""

import pytest

from repro.bmc.induction import (
    base_case_formula,
    find_induction_depth,
    inductive_step_formula,
    prove_by_induction,
)
from repro.bmc.models import arbiter_system, barrel_system, stack_system
from repro.bmc.transition import TransitionSystem
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError
from repro.solver.cdcl import solve


def counter_system(width: int, bad_value: int | None = None):
    """A saturating counter; optionally flags ``bad`` at a value."""
    c = Circuit(f"counter{width}_step")
    bits = c.add_input_bus("n", width)
    carry = c.CONST1()
    top = c.AND(*bits) if width > 1 else bits[0]
    for i in range(width):
        incremented = c.add_gate("XOR", (bits[i], carry))
        carry = c.AND(bits[i], carry)
        # saturate: hold at all-ones
        c.set_output(c.MUX(top, incremented, bits[i],
                           name=f"next_n[{i}]"))
    if bad_value is None:
        c.set_output(c.CONST0(name="bad"))
    else:
        terms = [bits[i] if (bad_value >> i) & 1 else c.NOT(bits[i])
                 for i in range(width)]
        c.set_output(c.AND(*terms, name="bad") if width > 1
                     else c.BUF(terms[0], name="bad"))
    init = {f"n[{i}]": False for i in range(width)}
    return TransitionSystem(f"counter{width}", c,
                            [f"n[{i}]" for i in range(width)], (), init)


class TestFormulas:
    def test_base_case_is_bmc(self):
        system = barrel_system(4)
        assert solve(base_case_formula(system, 3)).is_unsat

    def test_inductive_step_shape(self):
        formula = inductive_step_formula(barrel_system(4), 2)
        assert formula.num_clauses > 0

    def test_k_validated(self):
        with pytest.raises(ModelError):
            inductive_step_formula(barrel_system(4), 0)


class TestInduction:
    def test_token_ring_is_inductive(self):
        # One-hotness is preserved by rotation: 1-inductive.
        result = prove_by_induction(barrel_system(5), 1)
        assert result.proved
        assert result.verify_certificates()

    def test_arbiter_is_inductive(self):
        result = prove_by_induction(arbiter_system(4), 1)
        assert result.proved
        assert result.verify_certificates()

    def test_stack_is_not_k_inductive(self):
        """The stack property holds but is not k-inductive for any k:
        unreachable "ghost" states (all-zero one-hot register with an
        out-of-range binary pointer) stay good for arbitrarily long
        before producing a mismatch, so the inductive step always finds
        a counterexample-to-induction.  BMC still certifies every
        bound — the classic motivation for invariant strengthening."""
        result = find_induction_depth(stack_system(4), max_k=3)
        assert not result.proved
        assert result.failure == "step"
        assert solve(base_case_formula(stack_system(4), 6)).is_unsat

    def test_reachable_bad_fails_base(self):
        # The counter reaches 3: bad at 3 is a real violation.
        system = counter_system(2, bad_value=3)
        result = prove_by_induction(system, 5)
        assert not result.proved
        assert result.failure == "base"

    def test_deeper_k_needed(self):
        """Saturating counter started at 2 with bad at 1: the property
        holds (the counter only climbs) but is not 1-inductive — state
        0 is good and steps straight into the bad state 1.  State 0 has
        no predecessor, so lengthening the good prefix to k=2 rules it
        out: the property is exactly 2-inductive."""
        width = 2
        c = Circuit("c_step")
        bits = c.add_input_bus("n", width)
        carry = c.CONST1()
        top = c.AND(*bits)
        for i in range(width):
            incremented = c.add_gate("XOR", (bits[i], carry))
            carry = c.AND(bits[i], carry)
            c.set_output(c.MUX(top, incremented, bits[i],
                               name=f"next_n[{i}]"))
        c.set_output(c.AND(bits[0], c.NOT(bits[1]), name="bad"))  # n==1
        system = TransitionSystem(
            "ind_gap", c, [f"n[{i}]" for i in range(width)], (),
            {"n[0]": False, "n[1]": True})  # start at n=2

        one_step = prove_by_induction(system, 1)
        assert not one_step.proved
        assert one_step.failure == "step"

        result = find_induction_depth(system, max_k=3)
        assert result.proved
        assert result.k == 2
        assert result.verify_certificates()

    def test_failed_result_has_no_certificates(self):
        system = counter_system(2, bad_value=3)
        result = prove_by_induction(system, 4)
        assert result.base_proof is None
        assert not result.verify_certificates()
