"""Unit tests for gates and netlists."""

import pytest

from repro.circuits.gates import Gate, evaluate_gate
from repro.circuits.netlist import Circuit, bus
from repro.core.exceptions import CircuitError


class TestGate:
    def test_unknown_op(self):
        with pytest.raises(CircuitError):
            Gate("XAND", "y", ("a", "b"))

    def test_fixed_arity_enforced(self):
        with pytest.raises(CircuitError):
            Gate("NOT", "y", ("a", "b"))
        with pytest.raises(CircuitError):
            Gate("MUX", "y", ("a", "b"))

    def test_variadic_needs_input(self):
        with pytest.raises(CircuitError):
            Gate("AND", "y", ())

    @pytest.mark.parametrize("op,values,expected", [
        ("CONST0", [], False),
        ("CONST1", [], True),
        ("BUF", [True], True),
        ("NOT", [True], False),
        ("AND", [True, True, False], False),
        ("OR", [False, False, True], True),
        ("NAND", [True, True], False),
        ("NOR", [False, False], True),
        ("XOR", [True, False], True),
        ("XOR", [True, True], False),
        ("XNOR", [True, True], True),
        ("MUX", [False, True, False], True),   # sel=0 -> if0
        ("MUX", [True, True, False], False),   # sel=1 -> if1
    ])
    def test_evaluate(self, op, values, expected):
        assert evaluate_gate(op, values) is expected


class TestBus:
    def test_names(self):
        assert bus("a", 3) == ["a[0]", "a[1]", "a[2]"]


class TestCircuit:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_undefined_gate_input_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError, match="undefined"):
            c.AND("ghost", "ghost2")

    def test_redriven_net_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        c.NOT(a, name="y")
        with pytest.raises(CircuitError, match="already driven"):
            c.BUF(a, name="y")

    def test_output_must_exist(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.set_output("nothing")

    def test_autonaming_unique(self):
        c = Circuit()
        a = c.add_input("a")
        names = {c.NOT(a) for _ in range(10)}
        assert len(names) == 10

    def test_wide_xor_chains(self):
        c = Circuit()
        ins = c.add_inputs(["a", "b", "d"])
        out = c.XOR(*ins, name="p")
        assert out == "p"
        values = c.simulate({"a": True, "b": True, "d": True})
        assert values["p"] is True

    def test_xor_needs_two(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(CircuitError):
            c.XOR(a)

    def test_simulate_requires_all_inputs(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="missing value"):
            c.simulate({})

    def test_simulate_full_adder(self):
        c = Circuit()
        a, b, cin = c.add_inputs(["a", "b", "cin"])
        s = c.XOR(a, b, cin, name="s")
        carry = c.OR(c.AND(a, b), c.AND(a, cin), c.AND(b, cin),
                     name="co")
        c.set_outputs([s, carry])
        for x in (0, 1):
            for y in (0, 1):
                for z in (0, 1):
                    out = c.output_values(
                        {"a": bool(x), "b": bool(y), "cin": bool(z)})
                    total = x + y + z
                    assert out["s"] == bool(total & 1)
                    assert out["co"] == bool(total >> 1)

    def test_nets_and_counts(self):
        c = Circuit("t")
        a = c.add_input("a")
        y = c.NOT(a, name="y")
        assert c.nets == ["a", "y"]
        assert c.num_gates == 1
        assert c.driver_of(y).op == "NOT"
        assert c.driver_of(a) is None
        assert "gates=1" in repr(c)

    def test_input_bus(self):
        c = Circuit()
        nets = c.add_input_bus("x", 3)
        assert nets == ["x[0]", "x[1]", "x[2]"]
        assert c.inputs == nets
