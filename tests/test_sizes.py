"""Unit tests for proof size accounting (Table 2's columns)."""

import pytest

from repro.proofs.log import ProofLog
from repro.proofs.sizes import ProofSizeComparison, compare_proof_sizes


def small_log():
    log = ProofLog(input_clauses=[(1, 2), (-1, 2), (1, -2), (-1, -2)])
    log.add_step((2,), (0, 1), (1,))
    log.add_step((-2,), (2, 3), (1,))
    log.add_step((), (4, 5), (2,))
    log.ending = "empty"
    return log


class TestCompareProofSizes:
    def test_counts(self):
        sizes = compare_proof_sizes(small_log())
        assert sizes.num_conflict_clauses == 3
        assert sizes.conflict_proof_literals == 3  # (2), (-2), (-2)->pair
        assert sizes.resolution_graph_nodes == 3
        assert sizes.max_clause_length == 1

    def test_ratio(self):
        sizes = compare_proof_sizes(small_log())
        assert sizes.ratio_percent == pytest.approx(100.0)

    def test_matches_graph_node_count(self):
        from repro.proofs.resolution import ResolutionGraphProof

        log = small_log()
        graph = ResolutionGraphProof.from_log(log)
        assert compare_proof_sizes(log).resolution_graph_nodes \
            == graph.node_count


class TestRatioEdgeCases:
    def test_zero_nodes_zero_literals(self):
        sizes = ProofSizeComparison(
            num_conflict_clauses=1, conflict_proof_literals=0,
            resolution_graph_nodes=0, max_clause_length=0)
        assert sizes.ratio_percent == 0.0

    def test_zero_nodes_some_literals(self):
        sizes = ProofSizeComparison(
            num_conflict_clauses=1, conflict_proof_literals=5,
            resolution_graph_nodes=0, max_clause_length=5)
        assert sizes.ratio_percent == float("inf")

    def test_paper_units(self):
        """The paper's asymmetric units: literals vs nodes, in percent."""
        sizes = ProofSizeComparison(
            num_conflict_clauses=10, conflict_proof_literals=70,
            resolution_graph_nodes=1000, max_clause_length=12)
        assert sizes.ratio_percent == pytest.approx(7.0)
