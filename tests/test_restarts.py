"""Unit tests for restart policies."""

import pytest

from repro.solver.restarts import (
    GeometricRestarts,
    LubyRestarts,
    NoRestarts,
    luby,
    make_restart_policy,
)


class TestLubySequence:
    def test_known_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(15)] == expected

    def test_powers_of_two_only(self):
        values = {luby(i) for i in range(200)}
        assert all(v & (v - 1) == 0 for v in values)

    def test_peak_positions(self):
        # luby(2^k - 2) == 2^(k-1) (0-based peaks).
        for k in range(2, 10):
            assert luby((1 << k) - 2) == 1 << (k - 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            luby(-1)


class TestPolicies:
    def test_no_restarts(self):
        policy = NoRestarts()
        assert not policy.should_restart(10 ** 9)

    def test_luby_policy(self):
        policy = LubyRestarts(base=10)
        assert not policy.should_restart(9)
        assert policy.should_restart(10)
        policy.on_restart()
        assert policy.current_limit == 10  # luby(1) == 1
        policy.on_restart()
        assert policy.current_limit == 20  # luby(2) == 2

    def test_luby_invalid_base(self):
        with pytest.raises(ValueError):
            LubyRestarts(base=0)

    def test_geometric_policy(self):
        policy = GeometricRestarts(first=10, factor=2.0)
        assert policy.should_restart(10)
        policy.on_restart()
        assert not policy.should_restart(19)
        assert policy.should_restart(20)

    def test_geometric_invalid(self):
        with pytest.raises(ValueError):
            GeometricRestarts(first=0)
        with pytest.raises(ValueError):
            GeometricRestarts(first=10, factor=0.5)

    def test_factory(self):
        assert isinstance(make_restart_policy("luby", 5), LubyRestarts)
        assert isinstance(make_restart_policy("geometric", 5),
                          GeometricRestarts)
        assert isinstance(make_restart_policy("none", 5), NoRestarts)
        with pytest.raises(ValueError):
            make_restart_policy("fibonacci", 5)
