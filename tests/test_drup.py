"""Tests for DRUP traces and forward checking with deletions."""

import random

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.exceptions import ProofFormatError
from repro.core.formula import CnfFormula
from repro.proofs.drup import (
    ADD,
    DELETE,
    DrupEvent,
    DrupProof,
    format_drup,
    parse_drup,
    read_drup,
    write_drup,
)
from repro.solver.cdcl import solve
from repro.verify.forward import check_drup

from tests.conftest import random_formula


def drup_of(formula, **solver_kwargs):
    result = solve(formula, **solver_kwargs)
    assert result.is_unsat
    return DrupProof.from_log(result.log)


class TestFormat:
    def test_roundtrip(self):
        proof = DrupProof([
            DrupEvent(ADD, (1, 2)),
            DrupEvent(DELETE, (1, 2)),
            DrupEvent(ADD, ()),
        ])
        assert parse_drup(format_drup(proof, comment="x")) == proof

    def test_delete_prefix(self):
        text = format_drup(DrupProof([DrupEvent(DELETE, (3, -4))]))
        assert text == "d 3 -4 0\n"

    def test_missing_zero_rejected(self):
        with pytest.raises(ProofFormatError):
            parse_drup("1 2\n")

    def test_zero_inside_rejected(self):
        with pytest.raises(ProofFormatError):
            parse_drup("1 0 2 0\n")

    def test_bad_kind_rejected(self):
        with pytest.raises(ProofFormatError):
            DrupEvent("modify", (1,))

    def test_validate_structure(self):
        DrupProof([DrupEvent(ADD, ())]).validate_structure()
        with pytest.raises(ProofFormatError):
            DrupProof([DrupEvent(ADD, (1,))]).validate_structure()

    def test_file_io(self, tmp_path):
        proof = drup_of(CnfFormula([[1], [-1]]))
        path = tmp_path / "p.drup"
        write_drup(proof, path)
        assert read_drup(path) == proof


class TestFromLog:
    def test_deletions_interleaved(self):
        formula = pigeonhole(6)
        result = solve(formula, restart_base=10, reduce_base=30,
                       reduce_growth=10)
        assert result.stats.deleted_clauses > 0
        proof = DrupProof.from_log(result.log)
        assert proof.num_deletions == result.stats.deleted_clauses
        assert proof.num_additions == result.log.num_deduced
        kinds = [event.kind for event in proof.events]
        assert DELETE in kinds
        # The trace still ends with the empty addition.
        proof.validate_structure()

    def test_no_deletions_when_disabled(self):
        formula = pigeonhole(4)
        result = solve(formula, enable_deletion=False)
        proof = DrupProof.from_log(result.log)
        assert proof.num_deletions == 0


class TestForwardChecking:
    def test_accepts_correct_trace(self, tiny_unsat):
        report = check_drup(tiny_unsat, drup_of(tiny_unsat))
        assert report.ok
        assert report.peak_active_clauses >= tiny_unsat.num_clauses

    def test_accepts_trace_with_deletions(self):
        formula = pigeonhole(6)
        result = solve(formula, restart_base=10, reduce_base=30,
                       reduce_growth=10)
        proof = DrupProof.from_log(result.log)
        report = check_drup(formula, proof)
        assert report.ok
        assert report.num_deletions > 0
        # Deletions bound the active set below additions + input.
        assert (report.peak_active_clauses
                < formula.num_clauses + proof.num_additions)

    def test_rejects_non_rup_addition(self):
        formula = CnfFormula([[1, 2, 3]])
        trace = DrupProof([DrupEvent(ADD, (1,)), DrupEvent(ADD, ())])
        report = check_drup(formula, trace)
        assert not report.ok
        assert report.failed_event_index == 0
        assert "not RUP" in report.failure_reason

    def test_rejects_deleting_inactive_clause(self, tiny_unsat):
        trace = DrupProof([DrupEvent(DELETE, (9, 10)),
                           DrupEvent(ADD, ())])
        report = check_drup(tiny_unsat, trace)
        assert not report.ok
        assert "inactive" in report.failure_reason

    def test_rejects_missing_empty_clause(self, tiny_unsat):
        trace = DrupProof([DrupEvent(ADD, (1,))])
        report = check_drup(tiny_unsat, trace)
        assert not report.ok
        assert "never derives" in report.failure_reason

    def test_deleting_needed_clause_breaks_proof(self):
        # Delete the derived (1) before using it: the final pair check
        # still passes (BCP re-derives), but deleting an *input* clause
        # the refutation needs must fail.
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        trace = DrupProof([
            DrupEvent(DELETE, (1, 2)),
            DrupEvent(DELETE, (1, -2)),
            DrupEvent(ADD, (1,)),   # no longer RUP without those inputs
            DrupEvent(ADD, ()),
        ])
        report = check_drup(formula, trace)
        assert not report.ok
        assert report.failed_event_index == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_traces_check(self, seed):
        rng = random.Random(7000 + seed)
        checked = 0
        for _ in range(20):
            formula = random_formula(rng, 8, 35)
            result = solve(formula, restart_base=10, reduce_base=40,
                           reduce_growth=20)
            if not result.is_unsat:
                continue
            proof = DrupProof.from_log(result.log)
            assert check_drup(formula, proof).ok, formula.clauses
            checked += 1
        assert checked > 2
