"""Tests for the BMC model families: simulation vs reference semantics,
and small end-to-end UNSAT checks."""

import random
from collections import deque

import pytest

from repro.bmc.models import (
    arbiter_instance,
    arbiter_system,
    barrel_instance,
    barrel_system,
    fifo_instance,
    fifo_pair_system,
    longmult_instance,
    longmult_system,
    stack_instance,
    stack_system,
)
from repro.core.exceptions import ModelError
from repro.solver.cdcl import solve


class TestBarrel:
    def test_rotation_preserves_token(self):
        rng = random.Random(0)
        ts = barrel_system(6)
        init = {f"r{i}": i == 2 for i in range(6)}
        inputs = [{f"sh{s}": rng.random() < .5 for s in range(3)}
                  for _ in range(40)]
        _, bads = ts.run(init, inputs)
        assert not any(bads)

    def test_rotation_amount_applied(self):
        ts = barrel_system(4)
        init = {f"r{i}": i == 0 for i in range(4)}
        # rotate by 3 = 0b11
        inputs = [{"sh0": True, "sh1": True}]
        trace, _ = ts.run(init, inputs)
        assert trace[1] == {f"r{i}": i == 3 for i in range(4)}

    def test_instance_unsat(self):
        assert solve(barrel_instance(4, 5)).is_unsat

    def test_too_small(self):
        with pytest.raises(ModelError):
            barrel_system(1)


class TestLongmult:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 7), (6, 1)])
    def test_sequential_multiplier_computes_product(self, a, b):
        width = 3
        ts = longmult_system(width)
        init = {}
        for i in range(2 * width):
            init[f"acc[{i}]"] = False
            init[f"mc[{i}]"] = bool((a >> i) & 1) if i < width else False
        for i in range(width):
            init[f"mq[{i}]"] = bool((b >> i) & 1)
        trace, bads = ts.run(init, [{}] * width)
        assert not any(bads)
        result = sum(trace[width][f"acc[{i}]"] << i
                     for i in range(2 * width))
        assert result == a * b

    @pytest.mark.parametrize("bit", [0, 2, 5])
    def test_instance_unsat(self, bit):
        assert solve(longmult_instance(3, bit)).is_unsat

    def test_bit_range_checked(self):
        with pytest.raises(ModelError):
            longmult_instance(3, 6)


class TestFifoPair:
    def test_matches_reference_deque(self):
        rng = random.Random(9)
        depth = 4
        ts = fifo_pair_system(depth)
        init = {var: ts.init.get(var, rng.random() < .5)
                for var in ts.state_vars}
        inputs = [{"push": rng.random() < .6, "pop": rng.random() < .4,
                   "din": rng.random() < .5} for _ in range(60)]
        trace, bads = ts.run(init, inputs)
        assert not any(bads)
        reference = deque()
        for step, frame_inputs in enumerate(inputs):
            if frame_inputs["pop"] and reference:
                reference.popleft()
            if frame_inputs["push"] and len(reference) < depth:
                reference.append(frame_inputs["din"])
            state = trace[step + 1]
            count = sum(state[f"ca[{i}]"] << i for i in range(3))
            assert count == len(reference)
            if reference:
                assert state["a[0]"] == reference[0]

    def test_full_fifo_rejects_push(self):
        ts = fifo_pair_system(2)
        init = {var: False for var in ts.state_vars}
        pushes = [{"push": True, "pop": False, "din": True}
                  for _ in range(4)]
        trace, bads = ts.run(init, pushes)
        assert not any(bads)
        final = trace[-1]
        count = sum(final[f"ca[{i}]"] << i for i in range(2))
        assert count == 2  # capped at depth

    def test_instance_unsat(self):
        assert solve(fifo_instance(4, 4)).is_unsat

    def test_depth_must_be_power_of_two(self):
        with pytest.raises(ModelError):
            fifo_pair_system(6)


class TestArbiter:
    def test_mutual_exclusion_in_simulation(self):
        rng = random.Random(4)
        ts = arbiter_system(5)
        init = {f"t{i}": i == 1 for i in range(5)}
        inputs = [{f"req{i}": rng.random() < .5 for i in range(5)}
                  for _ in range(50)]
        _, bads = ts.run(init, inputs)
        assert not any(bads)

    def test_token_holds_while_requesting(self):
        ts = arbiter_system(3)
        init = {f"t{i}": i == 0 for i in range(3)}
        inputs = [{"req0": True, "req1": False, "req2": False}] * 3
        trace, _ = ts.run(init, inputs)
        assert all(frame["t0"] for frame in trace)

    def test_token_advances_when_idle(self):
        ts = arbiter_system(3)
        init = {f"t{i}": i == 0 for i in range(3)}
        inputs = [{"req0": False, "req1": False, "req2": False}] * 2
        trace, _ = ts.run(init, inputs)
        assert trace[1]["t1"] and trace[2]["t2"]

    def test_instance_unsat(self):
        assert solve(arbiter_instance(4, 5)).is_unsat


class TestStack:
    OPS = {"nop": (False, False), "push": (True, False),
           "pop": (False, True), "alu": (True, True)}

    def test_binary_tracks_reference(self):
        rng = random.Random(6)
        depth = 6
        ts = stack_system(depth)
        init = {var: ts.init[var] for var in ts.state_vars}
        names = list(self.OPS)
        sp = 0
        inputs = []
        expected = []
        for _ in range(60):
            op = rng.choice(names)
            op0, op1 = self.OPS[op]
            inputs.append({"op0": op0, "op1": op1})
            if op == "push" and sp < depth:
                sp += 1
            elif op == "pop" and sp >= 1:
                sp -= 1
            elif op == "alu" and sp >= 2:
                sp -= 1
            expected.append(sp)
        trace, bads = ts.run(init, inputs)
        assert not any(bads)
        bits = depth.bit_length()
        for step, want in enumerate(expected):
            got = sum(trace[step + 1][f"sp[{i}]"] << i
                      for i in range(bits))
            assert got == want

    def test_instance_unsat(self):
        assert solve(stack_instance(4, 4)).is_unsat

    def test_depth_validated(self):
        with pytest.raises(ModelError):
            stack_system(1)
