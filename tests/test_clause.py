"""Unit and property tests for Clause."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clause import EMPTY_CLAUSE, Clause
from repro.core.exceptions import ResolutionError

from tests.conftest import clause_literal_lists


class TestNormalization:
    def test_duplicates_removed(self):
        assert Clause([3, -1, 3]).literals == (-1, 3)

    def test_sorted_by_variable(self):
        assert Clause([5, -2, 1]).literals == (1, -2, 5)

    def test_positive_before_negative(self):
        assert Clause([-1, 1]).literals == (1, -1)

    def test_empty(self):
        assert Clause().literals == ()
        assert EMPTY_CLAUSE.is_empty()

    @given(clause_literal_lists)
    def test_idempotent(self, lits):
        once = Clause(lits)
        assert Clause(once.literals) == once

    @given(clause_literal_lists)
    def test_order_independent(self, lits):
        assert Clause(lits) == Clause(list(reversed(lits)))

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Clause([1, 0, 2])


class TestPredicates:
    def test_unit(self):
        assert Clause([5]).is_unit()
        assert not Clause([5, 6]).is_unit()
        assert not Clause().is_unit()

    def test_tautology(self):
        assert Clause([1, -1]).is_tautology()
        assert Clause([2, 1, -2]).is_tautology()
        assert not Clause([1, 2, -3]).is_tautology()

    def test_contains(self):
        c = Clause([1, -2])
        assert c.contains(-2)
        assert not c.contains(2)
        assert -2 in c
        assert 2 not in c

    def test_variables(self):
        assert Clause([1, -2, 3]).variables() == {1, 2, 3}

    def test_len_and_iter(self):
        c = Clause([4, -1])
        assert len(c) == 2
        assert list(c) == [-1, 4]


class TestEvaluation:
    def test_satisfied(self):
        assert Clause([1, 2]).evaluate({1: True}) is True

    def test_falsified(self):
        assert Clause([1, 2]).evaluate({1: False, 2: False}) is False

    def test_undetermined(self):
        assert Clause([1, 2]).evaluate({1: False}) is None

    def test_negative_literal(self):
        assert Clause([-1]).evaluate({1: False}) is True
        assert Clause([-1]).evaluate({1: True}) is False

    def test_empty_clause_is_false(self):
        assert Clause().evaluate({}) is False

    def test_falsifying_assignment_falsifies(self):
        c = Clause([1, -2, 3])
        assert c.evaluate(c.falsifying_assignment()) is False

    @given(clause_literal_lists.filter(
        lambda ls: ls and not Clause(ls).is_tautology()))
    def test_falsifying_assignment_property(self, lits):
        c = Clause(lits)
        assignment = c.falsifying_assignment()
        assert c.evaluate(assignment) is False


class TestResolution:
    def test_basic(self):
        resolvent = Clause([1, 2]).resolve(Clause([-1, 3]))
        assert resolvent == Clause([2, 3])

    def test_pivot_checked(self):
        Clause([1, 2]).resolve(Clause([-1, 3]), pivot=1)
        with pytest.raises(ResolutionError):
            Clause([1, 2]).resolve(Clause([-1, 3]), pivot=2)

    def test_to_empty_clause(self):
        assert Clause([1]).resolve(Clause([-1])) == EMPTY_CLAUSE

    def test_no_clash_rejected(self):
        with pytest.raises(ResolutionError):
            Clause([1, 2]).resolve(Clause([3, 4]))

    def test_double_clash_rejected(self):
        with pytest.raises(ResolutionError):
            Clause([1, 2]).resolve(Clause([-1, -2]))

    def test_merges_shared_literals(self):
        resolvent = Clause([1, 2, 3]).resolve(Clause([-1, 2, 4]))
        assert resolvent == Clause([2, 3, 4])

    def test_symmetric(self):
        a, b = Clause([1, 5]), Clause([-1, -7])
        assert a.resolve(b) == b.resolve(a)

    @given(clause_literal_lists, clause_literal_lists,
           st.integers(min_value=1, max_value=50))
    def test_resolvent_is_implied(self, lits_a, lits_b, pivot):
        """Soundness: any assignment satisfying both parents satisfies
        the resolvent, for every total assignment we can build."""
        a = Clause(list(lits_a) + [pivot])
        b = Clause(list(lits_b) + [-pivot])
        try:
            resolvent = a.resolve(b, pivot=pivot)
        except ResolutionError:
            return  # extra clashes — not a valid resolution, skip
        variables = a.variables() | b.variables()
        # Check on a handful of assignments derived from the resolvent.
        base = resolvent.falsifying_assignment()
        assignment = {var: base.get(var, True) for var in variables}
        if a.evaluate(assignment) and b.evaluate(assignment):
            assert resolvent.evaluate(assignment)


class TestHashEq:
    def test_equal_clauses_hash_equal(self):
        assert hash(Clause([2, 1])) == hash(Clause([1, 2]))

    def test_set_membership(self):
        assert Clause([1, 2]) in {Clause([2, 1])}

    def test_not_equal_other_type(self):
        assert Clause([1]) != (1,)

    def test_repr(self):
        assert repr(Clause([2, -1])) == "Clause(-1, 2)"
