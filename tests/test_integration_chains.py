"""Integration chains: composing the proof tools end to end.

Each test pipes artifacts through several subsystems — the combinations
a real user would run — and asserts every stage stays sound.
"""

import random

from repro.benchgen.php import pigeonhole
from repro.benchgen.xor_chains import parity_contradiction
from repro.preprocess.lifting import solve_with_preprocessing
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.drup import DrupProof, format_drup, parse_drup
from repro.solver.cdcl import solve
from repro.verify.forward import check_drup
from repro.verify.reconstruct import reconstruct_resolution_graph
from repro.verify.trimming import trim_proof
from repro.verify.verification import verify_proof_v1, verify_proof_v2

from tests.conftest import random_formula


class TestChains:
    def test_solve_trim_reconstruct(self):
        formula = pigeonhole(4)
        result = solve(formula)
        proof = ConflictClauseProof.from_log(result.log)
        trimmed = trim_proof(formula, proof).trimmed
        rebuilt = reconstruct_resolution_graph(formula, trimmed)
        assert rebuilt.graph.check().ok
        # The trimmed proof's graph can't have more nodes than checks
        # performed resolutions — and must still sink at empty.
        assert rebuilt.graph.node_count > 0

    def test_preprocess_lift_trim_verify(self):
        formula = parity_contradiction(12)
        # Pad so preprocessing has something to remove.
        padded = formula.copy()
        top = padded.num_vars
        padded.add_clause([top + 1, top + 2])
        padded.add_clause([top + 1, top + 2, top + 3])  # subsumed
        result, pre, lifted = solve_with_preprocessing(padded,
                                                       eliminate=True)
        assert result.is_unsat
        assert verify_proof_v2(padded, lifted).ok
        trimmed = trim_proof(padded, lifted)
        assert verify_proof_v1(padded, trimmed.trimmed).ok

    def test_drup_disk_roundtrip_forward_check(self):
        formula = pigeonhole(5)
        result = solve(formula, restart_base=10, reduce_base=40,
                       reduce_growth=20)
        trace = DrupProof.from_log(result.log)
        reloaded = parse_drup(format_drup(trace, comment="roundtrip"))
        assert reloaded == trace
        assert check_drup(formula, reloaded).ok

    def test_both_checkers_agree_on_random_formulas(self):
        rng = random.Random(4242)
        compared = 0
        for _ in range(20):
            formula = random_formula(rng, 8, 35)
            result = solve(formula)
            if not result.is_unsat:
                continue
            backward = verify_proof_v2(
                formula, ConflictClauseProof.from_log(result.log))
            forward = check_drup(formula,
                                 DrupProof.from_log(result.log))
            assert backward.ok and forward.ok
            compared += 1
        assert compared > 2

    def test_minimized_proof_through_all_tools(self):
        formula = pigeonhole(5)
        result = solve(formula, minimize_clauses=True)
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok
        assert trim_proof(formula, proof).report.ok
        assert reconstruct_resolution_graph(formula,
                                            proof).graph.check().ok
        assert check_drup(formula, DrupProof.from_log(result.log)).ok
