"""Tests for proof-preserving preprocessing."""

import random

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.exceptions import ReproError
from repro.core.formula import CnfFormula
from repro.preprocess.lifting import (
    lift_model,
    lift_proof,
    solve_with_preprocessing,
)
from repro.preprocess.preprocessor import preprocess
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import solve
from repro.solver.dpll import dpll_solve
from repro.verify.verification import verify_proof_v2

from tests.conftest import random_formula


class TestUnitPropagation:
    def test_forced_units_derived(self):
        formula = CnfFormula([[1], [-1, 2], [-2, 3], [3, 4, 5]])
        result = preprocess(formula, probe=False)
        assert set(result.derived_units) == {1, 2, 3}
        # Clause (3 4 5) is satisfied by unit 3 and removed.
        assert result.simplified.num_clauses == 0
        assert result.status == "SAT"

    def test_literal_stripping(self):
        formula = CnfFormula([[1], [-1, 2, 3]])
        result = preprocess(formula, probe=False)
        assert result.derived_units == (1,)
        assert [c.literals for c in result.simplified] == [(2, 3)]

    def test_unsat_by_propagation(self):
        formula = CnfFormula([[1], [-1, 2], [-2], [3, 4]])
        result = preprocess(formula, probe=False)
        assert result.status == "UNSAT"


class TestProbing:
    def test_failed_literal_found(self):
        # Assuming 1 forces 2 and -2: literal 1 fails, so (-1) derived.
        formula = CnfFormula([[-1, 2], [-1, -2], [1, 3], [3, 4, 5]])
        result = preprocess(formula)
        assert -1 in result.derived_units
        assert 3 in result.derived_units  # enabled by -1

    def test_probing_refutes(self):
        formula = CnfFormula([[-1, 2], [-1, -2], [1, 3], [1, -3]])
        result = preprocess(formula)
        assert result.status == "UNSAT"

    def test_max_probes_respected(self):
        formula = CnfFormula([[-1, 2], [-1, -2], [1, 3], [3, 4, 5]])
        result = preprocess(formula, max_probes=0)
        assert result.probes_run == 0
        assert result.status == "UNKNOWN"


class TestSubsumption:
    def test_superset_removed(self):
        formula = CnfFormula([[1, 2], [1, 2, 3], [4, 5]])
        result = preprocess(formula, probe=False)
        assert [c.literals for c in result.simplified] == [(1, 2), (4, 5)]
        assert 1 in result.removed_clause_indices

    def test_duplicate_keeps_first(self):
        formula = CnfFormula([[1, 2], [2, 1]])
        result = preprocess(formula, probe=False)
        assert result.kept_clause_indices == (0,)

    def test_subsume_disabled(self):
        formula = CnfFormula([[1, 2], [1, 2, 3]])
        result = preprocess(formula, probe=False, subsume=False)
        assert result.simplified.num_clauses == 2


class TestEquisatisfiability:
    @pytest.mark.parametrize("seed", range(6))
    def test_differential(self, seed):
        rng = random.Random(4000 + seed)
        for _ in range(25):
            formula = random_formula(rng, rng.randint(2, 9),
                                     rng.randint(3, 35))
            result = preprocess(formula)
            original = dpll_solve(formula).status
            if result.status != "UNKNOWN":
                assert result.status == original
            else:
                assert dpll_solve(result.simplified).status == original

    def test_model_lifting(self):
        formula = CnfFormula([[1], [-1, 2], [3, 4]])
        result = preprocess(formula, probe=False)
        inner = solve(result.simplified)
        assert inner.is_sat
        model = lift_model(result, inner.model)
        assert formula.is_satisfied_by(model)


class TestProofLifting:
    def test_preprocessing_refutation_verifies(self):
        formula = CnfFormula([[1], [-1, 2], [-2], [3, 4]])
        result = preprocess(formula, probe=False)
        proof = lift_proof(result)
        assert verify_proof_v2(formula, proof).ok

    def test_probing_refutation_verifies(self):
        formula = CnfFormula([[-1, 2], [-1, -2], [1, 3], [1, -3]])
        result = preprocess(formula)
        proof = lift_proof(result)
        assert verify_proof_v2(formula, proof).ok

    def test_lift_requires_inner_proof(self):
        formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        result = preprocess(formula, probe=False)
        with pytest.raises(ReproError):
            lift_proof(result)

    def test_lifted_proof_verifies_php(self):
        formula = pigeonhole(4)
        result, pre, proof = solve_with_preprocessing(formula)
        assert result.is_unsat
        assert verify_proof_v2(formula, proof).ok

    @pytest.mark.parametrize("seed", range(5))
    def test_lifted_proofs_verify_random(self, seed):
        rng = random.Random(5000 + seed)
        lifted_count = 0
        for _ in range(25):
            formula = random_formula(rng, rng.randint(3, 9),
                                     rng.randint(8, 40))
            result, pre, proof = solve_with_preprocessing(formula)
            if result.is_sat:
                assert formula.is_satisfied_by(result.model)
                continue
            assert verify_proof_v2(formula, proof).ok, formula.clauses
            lifted_count += 1
        assert lifted_count > 2

    def test_end_to_end_with_hard_probing_instance(self):
        # Probing solves chains that plain BCP cannot.
        formula = CnfFormula([
            [-1, 2], [-1, -2],       # 1 fails
            [1, 5], [-5, 6], [-6, 7],
            [3, 4, 5], [-7, -5, 8], [-8, 9], [-9, -5],
        ])
        result, pre, proof = solve_with_preprocessing(formula)
        expected = dpll_solve(formula).status
        assert result.status == expected
        if result.is_unsat:
            assert verify_proof_v2(formula, proof).ok
