"""Tests for timeline reconstruction and the live operational view."""

import io
import json

from repro.obs import (
    LIVE_SCHEMA,
    TIMELINE_SCHEMA,
    LiveStatusWriter,
    ProgressReporter,
    Tracer,
    attribution_summary,
    build_timeline,
    format_top_table,
    read_live_statuses,
    render_timeline_html,
    render_timeline_text,
    validate_live,
    validate_timeline,
    write_timeline_json,
)
from repro.obs.live import all_settled
from repro.obs.timeline import _critical_path  # noqa: F401 (API smoke)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _worker_events(clock, epoch, lo, hi, begin, end, pid,
                   attempt=0, checks=1, props=10, clause_visits=5,
                   with_check_child=False):
    """Record one worker-side shard span exactly the way
    ``repro.verify.parallel._run_shard`` does: lo/hi/pid/attempt on
    the begin, cost counters folded into the end attrs."""
    worker = Tracer(run_id="w", clock=clock, epoch=epoch)
    clock.now = begin
    with worker.span("shard", lo=lo, hi=hi, pid=pid,
                     attempt=attempt):
        if with_check_child:
            clock.now = begin + 0.1
            with worker.span("check", index=lo):
                clock.now = begin + 0.2
        clock.now = end
    worker.events[-1]["attrs"].update(
        checks=checks, wall=end - begin, props=props,
        clause_visits=clause_visits)
    return worker.events


def make_parallel_trace(retry=False):
    """A synthetic two-worker pool run with exact timestamps.

    Layout (seconds on the shared clock):

    * main: ``verify`` 0..10 wrapping ``pool`` 0.5..9.5
    * worker 101: ``shard[0:10]`` 1..4, ``shard[20:30]`` 5..9
    * worker 202: ``shard[10:20]`` 1..6

    With ``retry=True`` worker 202's shard also has a losing
    attempt-0 run at 1..2 (with a child check span) that the
    timeline must drop.
    """
    clock = FakeClock()
    parent = Tracer(run_id="r1", clock=clock, trace_id="ab" * 16)
    with parent.span("verify"):
        clock.now = 0.5
        with parent.span("pool", jobs=2):
            shards = []
            if retry:
                shards.append(_worker_events(
                    clock, parent.epoch, 10, 20, 1.0, 2.0, pid=202,
                    attempt=0, props=1, with_check_child=True))
            shards.append(_worker_events(
                clock, parent.epoch, 0, 10, 1.0, 4.0, pid=101,
                checks=10, props=40))
            shards.append(_worker_events(
                clock, parent.epoch, 10, 20, 1.0, 6.0, pid=202,
                attempt=1 if retry else 0, checks=10, props=60))
            shards.append(_worker_events(
                clock, parent.epoch, 20, 30, 5.0, 9.0, pid=101,
                checks=10, props=80))
            for events in shards:
                lo = events[0]["attrs"]["lo"]
                hi = events[0]["attrs"]["hi"]
                parent.replay(events, shard=[lo, hi])
            clock.now = 9.5
        clock.now = 10.0
    return parent


class TestBuildTimeline:
    def test_window_lanes_and_span_keys(self):
        doc = build_timeline(make_parallel_trace().events)
        assert doc["schema"] == TIMELINE_SCHEMA
        assert doc["run"] == "r1"
        assert doc["trace"] == "ab" * 16
        assert doc["window"] == {"begin": 0.0, "end": 10.0,
                                 "wall": 10.0}
        keys = {s["key"] for s in doc["spans"]}
        assert keys == {"verify", "pool", "shard[0:10]",
                        "shard[10:20]", "shard[20:30]"}
        lane = {s["key"]: s["worker"] for s in doc["spans"]}
        assert lane["verify"] == lane["pool"] == "main"
        assert lane["shard[0:10]"] == "worker-101"
        assert lane["shard[20:30]"] == "worker-101"
        assert lane["shard[10:20]"] == "worker-202"
        assert doc["dropped"] == {"duplicates": 0, "orphans": 0,
                                  "open": 0}

    def test_utilization_and_idle_gaps(self):
        doc = build_timeline(make_parallel_trace().events)
        rows = {r["worker"]: r for r in doc["workers"]}
        # Worker window is 1..9 (first worker begin to last end).
        w101 = rows["worker-101"]
        assert w101["busy"] == 7.0
        assert w101["utilization"] == 7.0 / 8.0
        assert [(g["begin"], g["end"]) for g in w101["gaps"]] == [
            (4.0, 5.0)]
        w202 = rows["worker-202"]
        assert w202["busy"] == 5.0
        assert w202["utilization"] == 5.0 / 8.0
        assert [(g["begin"], g["end"]) for g in w202["gaps"]] == [
            (6.0, 9.0)]
        assert rows["main"]["utilization"] == 1.0
        # Overall utilization averages worker lanes only.
        assert doc["utilization"] == (7 / 8 + 5 / 8) / 2

    def test_shard_skew(self):
        doc = build_timeline(make_parallel_trace().events)
        skew = doc["shard_skew"]
        assert skew["max_wall"] == 5.0
        assert skew["min_wall"] == 3.0
        assert skew["mean_wall"] == 4.0
        assert skew["skew_ratio"] == 1.25

    def test_critical_path_walk_and_self_times(self):
        doc = build_timeline(make_parallel_trace().events)
        path = [e["key"] for e in doc["critical_path"]]
        # shard[10:20] ends at 6 < shard[20:30]'s begin-cursor, so
        # the walk picks [20:30] then jumps to [0:10].
        assert path == ["verify", "pool", "shard[0:10]",
                        "shard[20:30]"]
        self_time = {e["key"]: e["self"]
                     for e in doc["critical_path"]}
        assert self_time["verify"] == 1.0
        assert self_time["pool"] == 2.0
        assert self_time["shard[0:10]"] == 3.0
        assert self_time["shard[20:30]"] == 4.0
        # Self times on the path account for the whole wall clock.
        assert doc["critical_path_wall"] == doc["window"]["wall"]

    def test_attribution_rows_and_stragglers(self):
        doc = build_timeline(make_parallel_trace().events)
        shards = doc["attribution"]["shards"]
        assert [s["shard"] for s in shards] == [
            [0, 10], [10, 20], [20, 30]]
        assert [s["props"] for s in shards] == [40, 60, 80]
        assert [s["clause_visits"] for s in shards] == [5, 5, 5]
        stragglers = doc["attribution"]["top_stragglers"]
        assert [s["key"] for s in stragglers] == [
            "shard[10:20]", "shard[20:30]", "shard[0:10]"]

    def test_deterministic_rebuild(self):
        """The same trace always yields byte-identical documents —
        what makes critical paths comparable across re-reads."""
        events = make_parallel_trace().events
        buf_a, buf_b = io.StringIO(), io.StringIO()
        write_timeline_json(build_timeline(events), buf_a)
        write_timeline_json(build_timeline(list(events)), buf_b)
        assert buf_a.getvalue() == buf_b.getvalue()

    def test_validates(self):
        doc = build_timeline(make_parallel_trace().events)
        assert validate_timeline(doc) == []


class TestRetryDedup:
    def test_losing_attempt_dropped_with_subtree(self):
        doc = build_timeline(make_parallel_trace(retry=True).events)
        keys = [s["key"] for s in doc["spans"]]
        assert keys.count("shard[10:20]") == 1
        # The loser and its check child are both gone.
        assert doc["dropped"]["duplicates"] == 2
        assert not any(s["name"] == "check" for s in doc["spans"])
        winner = next(s for s in doc["spans"]
                      if s["key"] == "shard[10:20]")
        assert winner["attrs"]["attempt"] == 1
        assert winner["end"] == 6.0
        # Attribution reflects only the winning attempt.
        row = next(s for s in doc["attribution"]["shards"]
                   if s["shard"] == [10, 20])
        assert row["props"] == 60
        assert row["attempt"] == 1


class TestDegradedTraces:
    def test_open_span_closed_and_counted(self):
        events = make_parallel_trace().events
        # Drop the final "end verify" — an in-flight or torn trace.
        truncated = events[:-1]
        doc = build_timeline(truncated)
        assert doc["dropped"]["open"] == 1
        verify = next(s for s in doc["spans"]
                      if s["key"] == "verify")
        assert verify["end"] == verify["begin"]
        assert validate_timeline(doc) == []

    def test_orphan_reparented_and_counted(self):
        events = [
            {"ts": 0.0, "run": "r", "type": "begin", "span": 1,
             "parent": 99, "name": "lost", "attrs": {}},
            {"ts": 1.0, "run": "r", "type": "end", "span": 1,
             "parent": 99, "name": "lost", "dur": 1.0, "attrs": {}},
        ]
        doc = build_timeline(events)
        assert doc["dropped"]["orphans"] == 1
        assert doc["spans"][0]["parent"] is None
        assert doc["spans"][0]["worker"] == "main"

    def test_empty_trace(self):
        doc = build_timeline([])
        assert doc["spans"] == []
        assert doc["utilization"] is None
        assert doc["attribution"] is None
        assert doc["critical_path"] == []
        assert validate_timeline(doc) == []

    def test_repeated_names_get_occurrence_keys(self):
        clock = FakeClock()
        tracer = Tracer(run_id="r", clock=clock)
        for _ in range(2):
            with tracer.span("window_shift"):
                clock.now += 1.0
        doc = build_timeline(tracer.events)
        assert [s["key"] for s in doc["spans"]] == [
            "window_shift", "window_shift@1"]


class TestAttributionSummary:
    def test_summary_shape(self):
        summary = attribution_summary(make_parallel_trace().events)
        assert summary["workers"] == 2
        assert summary["utilization"] == (7 / 8 + 5 / 8) / 2
        assert summary["skew_ratio"] == 1.25
        assert len(summary["shards"]) == 3

    def test_none_without_shards(self):
        clock = FakeClock()
        tracer = Tracer(run_id="r", clock=clock)
        with tracer.span("verify"):
            clock.now = 1.0
        assert attribution_summary(tracer.events) is None


class TestTimelineValidator:
    def test_flags_problems(self):
        doc = build_timeline(make_parallel_trace().events)
        doc["workers"][0]["utilization"] = 1.5
        doc["critical_path"].append(
            {"key": "ghost", "name": "ghost", "begin": 0, "end": 1,
             "dur": 1, "worker": "main", "self": 1})
        problems = validate_timeline(doc)
        assert any("utilization" in p for p in problems)
        assert any("ghost" in p for p in problems)

    def test_flags_wrong_schema(self):
        assert validate_timeline({"schema": "nope"}) != []


class TestRenderers:
    def test_text_rendering(self):
        doc = build_timeline(make_parallel_trace(retry=True).events)
        text = render_timeline_text(doc)
        assert "utilization=75.0%" in text
        assert "skew=1.25x" in text
        assert "worker-101" in text and "worker-202" in text
        assert "critical path" in text
        assert "shard[20:30]" in text
        assert "top stragglers:" in text
        assert "2 duplicate" in text
        # Gantt bars render within the fixed width.
        for line in text.splitlines():
            if "|" in line:
                bar = line.split("|")[1]
                assert len(bar) == 48
                assert set(bar) <= {"#", "."}

    def test_html_rendering_is_self_contained(self):
        doc = build_timeline(make_parallel_trace().events)
        page = render_timeline_html(doc)
        assert page.startswith("<!DOCTYPE html>")
        assert "http://" not in page and "https://" not in page
        assert "worker-101" in page and "worker-202" in page
        assert 'class="s"' in page      # Gantt blocks
        assert 'class="f"' in page      # flame blocks
        assert "shard[20:30]" in page

    def test_written_json_round_trips(self, tmp_path):
        doc = build_timeline(make_parallel_trace().events)
        path = tmp_path / "timeline.json"
        write_timeline_json(doc, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(
            json.dumps(doc))  # tuples normalized
        assert validate_timeline(loaded) == []


class TestLiveStatus:
    def test_writer_reader_round_trip(self, tmp_path):
        live = tmp_path / "live"
        writer = LiveStatusWriter(live, "r9", meta={
            "command": "verify", "instance": "php5.cnf"},
            wall=lambda: 123.0)
        writer.update(50, 100, "checks", elapsed=2.0, eta=2.0)
        statuses = read_live_statuses(live)
        assert len(statuses) == 1
        doc = statuses[0]
        assert validate_live(doc) == []
        assert doc["schema"] == LIVE_SCHEMA
        assert doc["run"] == "r9"
        assert doc["state"] == "running"
        assert doc["done"] == 50 and doc["total"] == 100
        assert doc["rate"] == 25.0
        assert doc["updated"] == 123.0
        assert doc["meta"]["instance"] == "php5.cnf"

    def test_reader_skips_foreign_files(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "other.json").write_text(
            '{"schema": "something/else"}')
        (tmp_path / "notes.txt").write_text("hi")
        assert read_live_statuses(tmp_path) == []
        assert read_live_statuses(tmp_path / "missing") == []

    def test_top_table_and_stale_detection(self, tmp_path):
        writer = LiveStatusWriter(tmp_path, "r1",
                                  meta={"command": "verify"},
                                  wall=lambda: 100.0)
        writer.update(10, 40, "checks", elapsed=5.0, eta=15.0)
        statuses = read_live_statuses(tmp_path)
        fresh = format_top_table(statuses, now=101.0)
        assert "running" in fresh
        assert "10/40" in fresh
        assert "25.0" in fresh
        stale = format_top_table(statuses, now=500.0)
        assert "stale" in stale
        assert format_top_table([], now=0.0) == "no live runs\n"

    def test_all_settled(self, tmp_path):
        writer = LiveStatusWriter(tmp_path, "r1",
                                  wall=lambda: 100.0)
        writer.update(10, 40, "checks", elapsed=5.0, eta=None)
        statuses = read_live_statuses(tmp_path)
        assert not all_settled(statuses, now=101.0)
        assert all_settled(statuses, now=500.0)  # went stale
        writer.update(40, 40, "checks", elapsed=9.0, eta=None,
                      state="done")
        assert all_settled(read_live_statuses(tmp_path), now=101.0)

    def test_validator_flags_problems(self):
        assert validate_live({"schema": LIVE_SCHEMA, "run": "",
                              "state": "bogus"}) != []

    def test_progress_feeds_status_writer(self, tmp_path):
        clock = FakeClock()
        writer = LiveStatusWriter(tmp_path, "r1",
                                  wall=lambda: 50.0)
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=4, stream=stream, interval=0.0, clock=clock,
            status_writer=writer, console=False)
        clock.now = 1.0
        reporter.update(2)
        doc = read_live_statuses(tmp_path)[0]
        assert doc["done"] == 2 and doc["state"] == "running"
        assert stream.getvalue() == ""  # console=False stays silent
        clock.now = 2.0
        reporter.finish(4)
        doc = read_live_statuses(tmp_path)[0]
        assert doc["done"] == 4 and doc["state"] == "done"
