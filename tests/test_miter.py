"""Tests for miter construction and equivalence checking."""

import pytest

from repro.circuits.library import (
    carry_select_adder,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
)
from repro.circuits.miter import (
    build_miter,
    check_equivalence,
    copy_into,
    equivalence_formula,
)
from repro.circuits.netlist import Circuit
from repro.core.exceptions import CircuitError
from repro.solver.cdcl import solve


def buggy_adder(width):
    """Ripple adder with the carry into bit 1 dropped."""
    c = Circuit(f"buggy{width}")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    carry = c.add_input("cin")
    for i in range(width):
        ab = c.add_gate("XOR", (a[i], b[i]))
        total = c.add_gate("XOR", (ab, carry))
        next_carry = c.OR(c.AND(a[i], b[i]), c.AND(ab, carry))
        carry = c.CONST0() if i == 0 else next_carry  # bug at bit 0
        c.set_output(c.BUF(total, name=f"s[{i}]"))
    c.set_output(c.BUF(carry, name="cout"))
    return c


class TestCopyInto:
    def test_instantiates_with_prefix(self):
        src = Circuit("src")
        a = src.add_input("a")
        src.set_output(src.NOT(a, name="y"))
        dest = Circuit("dest")
        dest.add_input("x")
        mapping = copy_into(dest, src, {"a": "x"}, "inner.")
        assert mapping["y"] == "inner.y"
        assert dest.driver_of("inner.y").op == "NOT"

    def test_missing_binding_rejected(self):
        src = Circuit("src")
        src.add_input("a")
        with pytest.raises(CircuitError, match="unbound"):
            copy_into(Circuit(), src, {}, "p.")


class TestBuildMiter:
    def test_input_mismatch_rejected(self):
        left = Circuit()
        left.add_input("a")
        left.set_output(left.NOT("a"))
        right = Circuit()
        right.add_input("b")
        right.set_output(right.NOT("b"))
        with pytest.raises(CircuitError, match="identical input"):
            build_miter(left, right)

    def test_output_count_mismatch_rejected(self):
        left = Circuit()
        left.add_input("a")
        left.set_output(left.NOT("a"))
        left.set_output(left.BUF("a"))
        right = Circuit()
        right.add_input("a")
        right.set_output(right.NOT("a"))
        with pytest.raises(CircuitError, match="output count"):
            build_miter(left, right)

    def test_no_outputs_rejected(self):
        left = Circuit()
        left.add_input("a")
        with pytest.raises(CircuitError):
            build_miter(left, left)

    def test_miter_simulates_difference(self):
        miter = build_miter(parity_chain(4), parity_tree(4))
        assignment = {f"x[{i}]": bool(i % 2) for i in range(4)}
        assert miter.output_values(assignment)["miter"] is False


class TestEquivalence:
    def test_equivalent_adders(self):
        equivalent, counterexample = check_equivalence(
            ripple_carry_adder(4), carry_select_adder(4))
        assert equivalent
        assert counterexample is None

    def test_buggy_adder_caught(self):
        equivalent, counterexample = check_equivalence(
            ripple_carry_adder(3), buggy_adder(3))
        assert not equivalent
        # The counterexample must actually distinguish the circuits.
        good = ripple_carry_adder(3).output_values(counterexample)
        bad = buggy_adder(3).output_values(counterexample)
        assert good != bad

    def test_formula_unsat_for_equivalent(self):
        formula = equivalence_formula(parity_chain(5), parity_tree(5))
        assert solve(formula).is_unsat

    def test_formula_sat_for_buggy(self):
        formula = equivalence_formula(ripple_carry_adder(3),
                                      buggy_adder(3))
        assert solve(formula).is_sat

    def test_self_equivalence(self):
        circuit = ripple_carry_adder(3)
        equivalent, _ = check_equivalence(circuit, ripple_carry_adder(3))
        assert equivalent
