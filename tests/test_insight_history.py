"""Tests for the run-history store, comparison, and regression gate."""

import json

import pytest

from repro.core.formula import CnfFormula
from repro.obs import (
    HistoryStore,
    Obs,
    check_regression,
    compare_runs,
    fingerprint,
)
from repro.obs.insight.analytics import analyze_proof_shape
from repro.obs.insight.history import (
    RUN_SCHEMA,
    format_compare_table,
    format_history,
    load_fingerprint,
)
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.verify.verification import verify_proof_v2

PAPER_F = CnfFormula([[1, 2], [1, -2], [-1, 3], [-1, -3], [4, 5]])
PAPER_PROOF = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)


def real_fingerprint(run_id="r-test-1", with_analytics=False):
    obs = Obs.enabled(depgraph=with_analytics)
    report = verify_proof_v2(PAPER_F, PAPER_PROOF, obs=obs)
    assert report.ok
    analytics = (analyze_proof_shape(PAPER_PROOF, report, obs.depgraph)
                 if with_analytics else None)
    return fingerprint(report, run_id=run_id, command="verify",
                       instance="paper.cnf", analytics=analytics)


def synthetic(run_id, wall, props_per_sec, outcome="proof_is_correct",
              phase_times=None):
    return {"schema": RUN_SCHEMA, "id": run_id, "utc": "2026-01-01",
            "command": "verify", "instance": "x.cnf",
            "outcome": outcome, "procedure": "verification2",
            "mode": "rebuild", "jobs": 1, "wall_time": wall,
            "checks": 100, "props": int(wall * props_per_sec),
            "props_per_sec": props_per_sec,
            "checks_per_sec": 100 / wall,
            "phase_times": phase_times or {}, "analytics": None}


class TestFingerprint:
    def test_from_real_report(self):
        record = real_fingerprint()
        assert record["schema"] == RUN_SCHEMA
        assert record["outcome"] == "proof_is_correct"
        assert record["procedure"] == "verification2"
        assert record["checks"] == 2
        assert record["wall_time"] >= 0
        assert record["analytics"] is None

    def test_analytics_subset(self):
        record = real_fingerprint(with_analytics=True)
        shape = record["analytics"]
        assert shape["local_clauses"] == 2
        assert shape["core_size"] == 4
        assert "check_props" not in shape  # only the compact subset

    def test_json_round_trip(self):
        record = real_fingerprint()
        assert json.loads(json.dumps(record)) == record


class TestHistoryStore:
    def test_append_and_read(self, tmp_path):
        store = HistoryStore(str(tmp_path / ".repro"))
        store.append(synthetic("r-a", 1.0, 1000.0))
        store.append(synthetic("r-b", 2.0, 900.0))
        records = store.read()
        assert [record["id"] for record in records] == ["r-a", "r-b"]

    def test_read_skips_torn_tail_and_foreign_lines(self, tmp_path):
        store = HistoryStore(str(tmp_path / ".repro"))
        store.append(synthetic("r-a", 1.0, 1000.0))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "other/v1"}\n')
            handle.write('{"schema": "repro.obs.run/v1", "id": "torn')
        records = store.read()
        assert [record["id"] for record in records] == ["r-a"]

    def test_select_by_index_and_prefix(self, tmp_path):
        store = HistoryStore(str(tmp_path / ".repro"))
        store.append(synthetic("alpha-1", 1.0, 1000.0))
        store.append(synthetic("beta-2", 2.0, 900.0))
        assert store.select("0")["id"] == "alpha-1"
        assert store.select("-1")["id"] == "beta-2"
        assert store.select("beta")["id"] == "beta-2"

    def test_select_errors(self, tmp_path):
        store = HistoryStore(str(tmp_path / ".repro"))
        with pytest.raises(LookupError, match="empty"):
            store.select("-1")
        store.append(synthetic("run-a", 1.0, 1000.0))
        store.append(synthetic("run-b", 2.0, 900.0))
        with pytest.raises(LookupError, match="out of range"):
            store.select("7")
        with pytest.raises(LookupError, match="no run with id"):
            store.select("zzz")
        with pytest.raises(LookupError, match="ambiguous"):
            store.select("run-")

    def test_load_fingerprint_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": "nope/v1"}))
        with pytest.raises(ValueError, match="repro.obs.run/v1"):
            load_fingerprint(path)
        path.write_text(json.dumps(synthetic("r-x", 1.0, 1000.0)))
        assert load_fingerprint(path)["id"] == "r-x"


class TestCompare:
    def test_delta_rows(self):
        a = synthetic("r-a", 1.0, 1000.0,
                      phase_times={"setup": 0.1, "checks": 0.9})
        b = synthetic("r-b", 1.5, 600.0,
                      phase_times={"setup": 0.1, "checks": 1.4})
        rows = {row["metric"]: row for row in compare_runs(a, b)}
        wall = rows["wall_time"]
        assert wall["delta"] == pytest.approx(0.5)
        assert wall["delta_pct"] == pytest.approx(50.0)
        assert wall["worse"] is True
        pps = rows["props_per_sec"]
        assert pps["delta_pct"] == pytest.approx(-40.0)
        assert pps["worse"] is True
        assert rows["checks"]["worse"] is None  # direction-free
        assert rows["phase:checks"]["worse"] is True

    def test_table_marks_regressions(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 1.5, 600.0)
        table = format_compare_table(a, b)
        lines = table.splitlines()
        assert "metric" in lines[0] and "r-a" in lines[0]
        wall_line = next(line for line in lines
                         if line.startswith("wall_time"))
        assert "+50.0% !" in wall_line

    def test_analytics_rows_present_when_both_carry_them(self):
        a, b = (real_fingerprint("r-a", with_analytics=True),
                real_fingerprint("r-b", with_analytics=True))
        metrics = {row["metric"] for row in compare_runs(a, b)}
        assert "analytics:local_clauses" in metrics


class TestCheckRegression:
    def test_identical_runs_pass(self):
        a = synthetic("r-a", 1.0, 1000.0, phase_times={"checks": 0.9})
        assert check_regression(a, dict(a), max_wall_pct=0.0,
                                max_props_drop_pct=0.0,
                                max_phase_pct=0.0) == []

    def test_seeded_slowdown_violates(self):
        a = synthetic("r-a", 1.0, 1000.0, phase_times={"checks": 0.9})
        b = synthetic("r-b", 1.5, 600.0, phase_times={"checks": 1.4})
        violations = check_regression(a, b, max_wall_pct=20.0,
                                      max_props_drop_pct=25.0,
                                      max_phase_pct=30.0)
        assert len(violations) == 3
        assert any("wall_time regressed +50.0%" in v
                   for v in violations)
        assert any("props_per_sec dropped -40.0%" in v
                   for v in violations)
        assert any("phase checks regressed" in v for v in violations)

    def test_thresholds_are_opt_in(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 10.0, 100.0)
        # No thresholds: nothing to violate, however slow the run.
        assert check_regression(a, b, max_wall_pct=None,
                                max_props_drop_pct=None,
                                max_phase_pct=None) == []

    def test_within_threshold_passes(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 1.1, 950.0)
        assert check_regression(a, b, max_wall_pct=20.0,
                                max_props_drop_pct=25.0,
                                max_phase_pct=None) == []

    def test_outcome_change_is_always_a_violation(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 0.5, 2000.0, outcome="proof_is_not_correct")
        violations = check_regression(a, b, max_wall_pct=None,
                                      max_props_drop_pct=None,
                                      max_phase_pct=None)
        assert any("outcome changed" in v for v in violations)


class TestFormatHistory:
    def test_empty(self):
        assert format_history([]) == "history is empty"

    def test_listing_and_limit(self):
        records = [synthetic(f"r-{i}", 1.0 + i, 1000.0)
                   for i in range(5)]
        text = format_history(records, limit=2)
        assert "r-4" in text and "r-3" in text
        assert "r-0" not in text
        # Positions are absolute, so selectors keep working.
        assert text.splitlines()[2].startswith("3")


def _attribution(utilization, skew=1.2, workers=4):
    return {"utilization": utilization, "skew_ratio": skew,
            "workers": workers, "shards": [], "top_stragglers": []}


class TestPrune:
    def test_keeps_newest_n(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        for i in range(5):
            store.append(synthetic(f"r-{i}", 1.0, 1000.0))
        removed = store.prune(keep=2)
        assert removed == 3
        assert [r["id"] for r in store.read()] == ["r-3", "r-4"]
        # The rewrite is a well-formed JSONL file.
        lines = (tmp_path / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == RUN_SCHEMA
                   for line in lines)

    def test_noop_when_small_enough(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.append(synthetic("r-0", 1.0, 1000.0))
        assert store.prune(keep=5) == 0
        assert store.prune(keep=1) == 0
        assert [r["id"] for r in store.read()] == ["r-0"]

    def test_keep_zero_empties(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        store.append(synthetic("r-0", 1.0, 1000.0))
        assert store.prune(keep=0) == 1
        assert store.read() == []

    def test_negative_keep_rejected(self, tmp_path):
        store = HistoryStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.prune(keep=-1)

    def test_missing_file_is_empty(self, tmp_path):
        store = HistoryStore(str(tmp_path / "absent"))
        assert store.prune(keep=3) == 0


class TestAttribution:
    def test_fingerprint_carries_attribution(self):
        obs = Obs.enabled()
        report = verify_proof_v2(PAPER_F, PAPER_PROOF, obs=obs)
        record = fingerprint(report, run_id="r-attr",
                             command="verify",
                             attribution=_attribution(0.9))
        assert record["attribution"]["utilization"] == 0.9
        again = json.loads(json.dumps(record))
        assert again["attribution"] == record["attribution"]
        # Sequential runs record None.
        plain = fingerprint(report, run_id="r-seq", command="verify")
        assert plain["attribution"] is None

    def test_compare_adds_attribution_rows(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 1.0, 1000.0)
        a["attribution"] = _attribution(0.9, skew=1.1)
        b["attribution"] = _attribution(0.6, skew=1.8)
        rows = {row["metric"]: row for row in compare_runs(a, b)}
        util = rows["attribution:utilization"]
        assert util["worse"] is True  # utilization dropped
        assert rows["attribution:skew_ratio"]["worse"] is True
        assert rows["attribution:workers"]["worse"] is None

    def test_compare_skips_rows_without_attribution(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 1.0, 1000.0)
        metrics = {row["metric"] for row in compare_runs(a, b)}
        assert not any(m.startswith("attribution:") for m in metrics)

    def test_min_utilization_gate(self):
        a = synthetic("r-a", 1.0, 1000.0)
        b = synthetic("r-b", 1.0, 1000.0)
        b["attribution"] = _attribution(0.5)
        assert check_regression(a, b,
                                min_utilization_pct=40.0) == []
        violations = check_regression(a, b,
                                      min_utilization_pct=80.0)
        assert any("utilization" in v for v in violations)

    def test_min_utilization_ignored_without_attribution(self):
        a = synthetic("r-a", 1.0, 1000.0)
        assert check_regression(a, dict(a),
                                min_utilization_pct=99.0) == []
