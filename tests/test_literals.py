"""Unit and property tests for literal encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.literals import (
    check_dimacs_literal,
    decode,
    decode_clause,
    encode,
    encode_clause,
    is_negative,
    negate,
    variable,
)


class TestEncodeDecode:
    def test_positive(self):
        assert encode(3) == 6

    def test_negative(self):
        assert encode(-3) == 7

    def test_decode_positive(self):
        assert decode(6) == 3

    def test_decode_negative(self):
        assert decode(7) == -3

    def test_variable_one(self):
        assert encode(1) == 2
        assert encode(-1) == 3

    @given(st.integers(min_value=-10_000, max_value=10_000).filter(bool))
    def test_roundtrip(self, lit):
        assert decode(encode(lit)) == lit

    @given(st.integers(min_value=2, max_value=20_000))
    def test_encoded_roundtrip(self, enc):
        assert encode(decode(enc)) == enc


class TestNegation:
    @given(st.integers(min_value=-1000, max_value=1000).filter(bool))
    def test_negate_matches_dimacs_negation(self, lit):
        assert negate(encode(lit)) == encode(-lit)

    @given(st.integers(min_value=2, max_value=2000))
    def test_negate_involution(self, enc):
        assert negate(negate(enc)) == enc

    @given(st.integers(min_value=2, max_value=2000))
    def test_negate_changes_sign_only(self, enc):
        assert variable(negate(enc)) == variable(enc)
        assert is_negative(negate(enc)) != is_negative(enc)


class TestVariableAndSign:
    @given(st.integers(min_value=-1000, max_value=1000).filter(bool))
    def test_variable(self, lit):
        assert variable(encode(lit)) == abs(lit)

    @given(st.integers(min_value=-1000, max_value=1000).filter(bool))
    def test_is_negative(self, lit):
        assert is_negative(encode(lit)) == (lit < 0)


class TestClauseConversion:
    def test_encode_clause(self):
        assert encode_clause([1, -2, 3]) == [2, 5, 6]

    def test_decode_clause(self):
        assert decode_clause([2, 5, 6]) == (1, -2, 3)

    @given(st.lists(st.integers(min_value=-50, max_value=50).filter(bool)))
    def test_roundtrip(self, lits):
        assert list(decode_clause(encode_clause(lits))) == lits


class TestValidation:
    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_dimacs_literal(0)

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            check_dimacs_literal(True)

    def test_float_rejected(self):
        with pytest.raises(ValueError):
            check_dimacs_literal(1.5)

    def test_valid_returned(self):
        assert check_dimacs_literal(-7) == -7
