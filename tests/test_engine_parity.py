"""Engine-parity differential tests.

The BCP engines (watched, counting, arena, and — when numpy is
installed — vector and vector-inc) are interchangeable by contract: every
verification procedure must produce the same verdict,
the same failed/marked indices, and the same unsat core regardless of
which engine ran the checks.  These tests pin that contract on the
paper's worked example and on solved instances — including under the
adversarial mutation sweep and across the fork/spawn process-pool
boundary (where a zero-copy shared-memory arena carries the clause
database).
"""

import pytest

from repro.bcp import ENGINES
from repro.benchgen.registry import pigeonhole
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.proofs.drup import DrupProof
from repro.solver.cdcl import solve
from repro.testing import run_differential
from repro.verify.forward import check_drup
from repro.verify.parallel import fork_available
from repro.verify.verification import verify_proof_v1, verify_proof_v2

ENGINE_NAMES = tuple(ENGINES)

# The paper's worked example: two derived units refute the first four
# clauses; (4 5) is padding outside the refutation's cone.
PAPER_F = CnfFormula([[1, 2], [1, -2], [-1, 3], [-1, -3], [4, 5]])
PAPER_PROOF = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)


@pytest.fixture(scope="module")
def solved():
    formula = pigeonhole(5)
    result = solve(formula, reduce_base=20, reduce_growth=10)
    assert result.is_unsat
    return (formula, ConflictClauseProof.from_log(result.log),
            DrupProof.from_log(result.log))


def _v1_identity(report):
    return (report.outcome, report.num_checked,
            report.failed_clause_index, report.marked_proof_indices)


def _v2_identity(report):
    return (report.outcome, report.num_checked, report.num_skipped,
            report.failed_clause_index, report.marked_proof_indices,
            report.core.clause_indices if report.core else None)


class TestWorkedExample:
    @pytest.mark.parametrize("order", ["backward", "forward"])
    @pytest.mark.parametrize("mode", ["rebuild", "incremental"])
    def test_v1_identical_across_engines(self, order, mode):
        reports = [verify_proof_v1(PAPER_F, PAPER_PROOF, engine,
                                   order=order, mode=mode)
                   for engine in ENGINE_NAMES]
        assert all(r.ok for r in reports)
        assert len({_v1_identity(r) for r in reports}) == 1
        assert [r.engine for r in reports] == list(ENGINE_NAMES)

    def test_v2_identical_across_engines(self):
        reports = [verify_proof_v2(PAPER_F, PAPER_PROOF, engine,
                                   mode=mode)
                   for engine in ENGINE_NAMES
                   for mode in ("rebuild", "incremental")]
        assert all(r.ok for r in reports)
        assert len({_v2_identity(r) for r in reports}) == 1
        # The worked example's core is exactly the first four clauses.
        assert reports[0].core.clause_indices == (0, 1, 2, 3)

    def test_counter_schema_identical(self):
        keys = set()
        for engine in ENGINE_NAMES:
            report = verify_proof_v1(PAPER_F, PAPER_PROOF, engine)
            keys.add(tuple(sorted(report.bcp_counters)))
        assert len(keys) == 1


class TestSolvedInstance:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_v1_verdict_and_marks(self, solved, engine):
        formula, proof, _ = solved
        baseline = verify_proof_v1(formula, proof)
        report = verify_proof_v1(formula, proof, engine,
                                 mode="incremental")
        assert _v1_identity(report) == _v1_identity(baseline)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_v2_verdict_and_sound_core(self, solved, engine):
        """Verdicts are engine-independent; marked sets need not be —
        each engine may meet a different (equally valid) conflict
        clause first (the counting engine scans occurrence lists in
        cid order; the arena cannot normalize its immutable clause
        bodies the way the watched engine does), so the contract is
        that every engine's core is *sound*, shown by re-verifying its
        own trimmed proof against its own core.
        """
        from repro.verify.trimming import trim_proof

        formula, proof, _ = solved
        baseline = verify_proof_v2(formula, proof, "watched")
        report = verify_proof_v2(formula, proof, engine)
        assert report.outcome == baseline.outcome
        assert report.core is not None
        trimmed = trim_proof(formula, proof, engine_cls=engine).trimmed
        assert verify_proof_v1(report.core.as_formula(), trimmed).ok

    @pytest.mark.parametrize("engine", [
        e for e in ("watched", "arena", "vector", "vector-inc")
        if e in ENGINES])
    def test_forward_drup_verdict(self, solved, engine):
        formula, _, drup = solved
        report = check_drup(formula, drup, engine_cls=engine)
        assert report.ok
        assert report.engine == engine

    @pytest.mark.skipif(not fork_available(),
                        reason="needs a process pool")
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_parallel_matches_sequential(self, solved, engine):
        formula, proof, _ = solved
        sequential = verify_proof_v1(formula, proof, engine)
        parallel = verify_proof_v1(formula, proof, engine, jobs=2)
        assert _v1_identity(parallel) == _v1_identity(sequential)
        assert parallel.engine == engine


class TestMutationSweep:
    """The adversarial half of the parity guarantee: the mutation
    harness's expectations are engine-independent, so the same sweep
    must hold under every engine."""

    # One config per axis keeps 3 engines x ~15 mutations tractable.
    CONFIGS = (("backward", "incremental", 1),
               ("forward", "rebuild", 1),
               ("backward", "incremental", 2))

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_expectations_hold(self, solved, engine):
        formula, proof, drup = solved
        # The counting engine cannot honor DRUP deletions; sweep it
        # over the conflict-clause mutations only.
        trace = None if engine == "counting" else drup
        summary = run_differential(formula, proof, drup=trace,
                                   v1_configs=self.CONFIGS,
                                   engine=engine)
        assert summary.ok, summary.problems

    def test_verdict_matrix_identical(self, solved):
        """Not just "no expectation violated": every mutation gets the
        *same* accept/reject matrix from every engine."""
        formula, proof, _ = solved
        matrices = {}
        for engine in ENGINE_NAMES:
            summary = run_differential(formula, proof,
                                       v1_configs=self.CONFIGS[:1],
                                       engine=engine)
            matrices[engine] = [
                (v.mutation.operator, v.mutation.description,
                 v.rejected_at_parse, tuple(sorted(
                     v.v1_outcomes.items())), v.v2_accepted)
                for v in summary.verdicts]
        baseline = matrices[ENGINE_NAMES[0]]
        for engine in ENGINE_NAMES[1:]:
            assert matrices[engine] == baseline


class TestDeletionParity:
    """Deletion handling is part of the engine contract: the streaming
    checker's verdict, counts, and cumulative props must not depend on
    which removal-capable engine ran, and the counting engine (which
    cannot remove) must be refused identically everywhere."""

    REMOVAL = [e for e in ("watched", "arena", "vector", "vector-inc")
               if e in ENGINES]

    @pytest.fixture(scope="class")
    def chain_files(self, tmp_path_factory):
        from repro.benchgen.streaming import (
            deletion_chain_formula,
            write_deletion_chain_drup,
        )
        from repro.core.dimacs import read_dimacs, write_dimacs

        tmp = tmp_path_factory.mktemp("chain")
        cnf, drup = tmp / "chain.cnf", tmp / "chain.drup"
        write_dimacs(deletion_chain_formula(300), cnf)
        write_deletion_chain_drup(drup, 300, window=4)
        return read_dimacs(cnf), drup

    def test_streaming_identity(self, chain_files):
        from repro.verify.streaming import verify_stream

        formula, drup = chain_files
        identities = {}
        for engine in self.REMOVAL:
            report = verify_stream(formula, drup, engine_cls=engine)
            identities[engine] = (
                report.outcome, report.num_additions,
                report.num_deletions, report.peak_live_clauses,
                report.window_shifts,
                report.bcp_counters["assignments"])
        assert len(set(identities.values())) == 1, identities

    def test_streaming_matches_forward(self, chain_files, solved):
        from repro.proofs.drup import write_drup
        from repro.verify.streaming import verify_stream

        # The solver's own deletion-free trace, plus the deletion
        # chain: streaming and in-memory forward checking agree on
        # both, for every removal engine.
        formula, drup = chain_files
        for engine in self.REMOVAL:
            streamed = verify_stream(formula, drup, engine_cls=engine)
            from repro.proofs.drup import read_drup

            in_memory = check_drup(formula, read_drup(drup),
                                   engine_cls=engine)
            assert streamed.outcome == in_memory.outcome
            assert streamed.num_deletions == in_memory.num_deletions

    def test_counting_refused_by_stream_and_forward(self, chain_files):
        from repro.proofs.drup import read_drup
        from repro.verify.streaming import verify_stream

        formula, drup = chain_files
        with pytest.raises(ValueError, match="does not support"):
            verify_stream(formula, drup, engine_cls="counting")
        with pytest.raises(ValueError, match="deletion"):
            check_drup(formula, read_drup(drup),
                       engine_cls="counting")

    @pytest.mark.skipif(not fork_available(),
                        reason="needs both fork and spawn")
    @pytest.mark.parametrize("engine", [
        e for e in ("arena", "vector", "vector-inc") if e in ENGINES])
    def test_tombstones_cross_fork_and_spawn(self, solved,
                                             monkeypatch, engine):
        """Parallel v1 ships the clause arena over shared memory; a
        tombstone-aware arena must produce the same verdict whether
        the workers forked or spawned."""
        formula, proof, _ = solved
        identities = {}
        for method in ("fork", "spawn"):
            monkeypatch.setenv("REPRO_START_METHOD", method)
            report = verify_proof_v1(formula, proof, engine,
                                     mode="incremental", jobs=2)
            identities[method] = _v1_identity(report)
        monkeypatch.delenv("REPRO_START_METHOD")
        assert identities["fork"] == identities["spawn"]


class TestStartMethodIdentity:
    """``--jobs N`` must produce identical reports whether the pool
    forks or spawns — the shared-memory arena is the transport that
    makes the spawn side possible at all."""

    # Counter *totals* are excluded: with an incremental checker, the
    # work a check costs depends on which checks the same worker ran
    # before it, and shard-to-worker assignment is pool scheduling —
    # nondeterministic even between two fork runs.
    REPORT_FIELDS = ("outcome", "procedure", "num_proof_clauses",
                     "num_checked", "num_skipped",
                     "failed_clause_index", "failure_reason", "mode",
                     "engine", "jobs", "worker_failures", "warnings")

    @pytest.mark.skipif(not fork_available(),
                        reason="needs both fork and spawn")
    @pytest.mark.parametrize("engine", [
        e for e in ("arena", "vector", "vector-inc") if e in ENGINES])
    def test_fork_and_spawn_reports_identical(self, solved,
                                              monkeypatch, engine):
        formula, proof, _ = solved
        reports = {}
        for method in ("fork", "spawn"):
            monkeypatch.setenv("REPRO_START_METHOD", method)
            reports[method] = verify_proof_v1(
                formula, proof, engine, mode="incremental", jobs=2)
        monkeypatch.delenv("REPRO_START_METHOD")
        for field in self.REPORT_FIELDS:
            assert getattr(reports["fork"], field) \
                == getattr(reports["spawn"], field), field
        assert (set(reports["fork"].bcp_counters)
                == set(reports["spawn"].bcp_counters))
