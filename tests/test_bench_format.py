"""Tests for the ISCAS BENCH netlist format."""

import random

import pytest

from repro.circuits.bench_format import (
    format_bench,
    parse_bench,
    read_bench,
    write_bench,
)
from repro.circuits.library import ripple_carry_adder, wallace_multiplier
from repro.circuits.miter import check_equivalence
from repro.core.exceptions import CircuitError

C17 = """\
# c17 — the smallest ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


class TestParse:
    def test_c17(self):
        circuit = parse_bench(C17, name="c17")
        assert len(circuit.inputs) == 5
        assert circuit.outputs == ["22", "23"]
        assert circuit.num_gates == 6
        # All inputs 0: first-level NANDs go 1, the output NANDs of two
        # 1s go 0.
        values = circuit.output_values({n: False for n in circuit.inputs})
        assert values == {"22": False, "23": False}

    def test_out_of_order_definitions(self):
        text = ("INPUT(a)\nOUTPUT(y)\n"
                "y = NOT(m)\n"      # uses m before its definition
                "m = BUFF(a)\n")
        circuit = parse_bench(text)
        assert circuit.output_values({"a": True}) == {"y": False}

    def test_wide_xor(self):
        text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
                "y = XOR(a, b, c)\n")
        circuit = parse_bench(text)
        assert circuit.output_values(
            {"a": True, "b": True, "c": True})["y"] is True

    def test_wide_xnor(self):
        text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
                "y = XNOR(a, b, c)\n")
        circuit = parse_bench(text)
        assert circuit.output_values(
            {"a": True, "b": True, "c": False})["y"] is True

    def test_output_can_be_input(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(a)\n")
        assert circuit.outputs == ["a"]

    def test_dff_rejected(self):
        with pytest.raises(CircuitError, match="DFF"):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError, match="unknown gate"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_cycle_rejected(self):
        text = ("INPUT(a)\nOUTPUT(y)\n"
                "y = AND(a, z)\nz = NOT(y)\n")
        with pytest.raises(CircuitError, match="cycle"):
            parse_bench(text)

    def test_double_definition_rejected(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"
        with pytest.raises(CircuitError, match="twice"):
            parse_bench(text)

    def test_undefined_output_rejected(self):
        with pytest.raises(CircuitError, match="never defined"):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\n")

    def test_garbage_rejected(self):
        with pytest.raises(CircuitError, match="cannot parse"):
            parse_bench("INPUT(a)\nwat\n")


class TestRoundtrip:
    @pytest.mark.parametrize("builder", [
        lambda: ripple_carry_adder(4),
        lambda: wallace_multiplier(3),
    ])
    def test_library_circuits(self, builder):
        original = builder()
        restored = parse_bench(format_bench(original),
                               name=original.name)
        equivalent, counterexample = check_equivalence(original, restored)
        assert equivalent, counterexample

    def test_c17_roundtrip(self):
        circuit = parse_bench(C17, name="c17")
        again = parse_bench(format_bench(circuit, comment="roundtrip"))
        rng = random.Random(0)
        for _ in range(20):
            assignment = {net: rng.random() < 0.5
                          for net in circuit.inputs}
            assert (circuit.output_values(assignment)
                    == again.output_values(assignment))

    def test_file_io(self, tmp_path):
        circuit = parse_bench(C17, name="c17")
        path = tmp_path / "c17.bench"
        write_bench(circuit, path, comment="c17")
        loaded = read_bench(path, name="c17")
        assert loaded.num_gates == circuit.num_gates
