"""API surface tests: every advertised name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.bcp",
    "repro.solver",
    "repro.proofs",
    "repro.verify",
    "repro.obs",
    "repro.preprocess",
    "repro.circuits",
    "repro.aig",
    "repro.bmc",
    "repro.pipelines",
    "repro.benchgen",
    "repro.experiments",
    "repro.testing",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} lacks __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    package = importlib.import_module(package_name)
    exported = package.__all__
    assert len(exported) == len(set(exported))


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_public_callables_have_docstrings():
    """Every public callable in the top-level API is documented."""
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"undocumented: {undocumented}"
