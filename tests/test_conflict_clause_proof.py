"""Unit tests for ConflictClauseProof structure and export."""

import pytest

from repro.core.exceptions import ProofFormatError
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.proofs.log import ProofLog
from repro.solver.cdcl import solve


class TestStructureValidation:
    def test_final_pair_valid(self):
        proof = ConflictClauseProof([(1, 2), (-1,), (1,)],
                                    ENDING_FINAL_PAIR)
        assert proof.final_pair() == ((-1,), (1,))

    def test_final_pair_requires_two_clauses(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof([(1,)], ENDING_FINAL_PAIR)

    def test_final_pair_must_conflict(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof([(1,), (2,)], ENDING_FINAL_PAIR)

    def test_final_pair_must_be_units(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof([(1, 2), (-1, -2)], ENDING_FINAL_PAIR)

    def test_empty_ending_valid(self):
        proof = ConflictClauseProof([(1,), ()], ENDING_EMPTY)
        assert proof.final_pair() is None

    def test_empty_ending_requires_empty_clause(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof([(1,)], ENDING_EMPTY)

    def test_no_clauses_rejected(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof([], ENDING_EMPTY)

    def test_unknown_ending_rejected(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof([()], "maybe")


class TestFromLog:
    def test_solver_log_gives_final_pair(self, tiny_unsat):
        result = solve(tiny_unsat)
        proof = ConflictClauseProof.from_log(result.log)
        assert proof.ending == ENDING_FINAL_PAIR
        first, second = proof.final_pair()
        assert first[0] == -second[0]

    def test_empty_clause_input_gives_empty_ending(self):
        result = solve(CnfFormula([[1], []]))
        proof = ConflictClauseProof.from_log(result.log)
        assert proof.ending == ENDING_EMPTY

    def test_incomplete_log_rejected(self):
        with pytest.raises(ProofFormatError):
            ConflictClauseProof.from_log(ProofLog())


class TestAccessors:
    def test_sizes(self):
        proof = ConflictClauseProof([(1, 2, 3), (-1,), (1,)],
                                    ENDING_FINAL_PAIR)
        assert len(proof) == 3
        assert proof.literal_count() == 5
        assert proof.max_var() == 3

    def test_iteration_and_indexing(self):
        proof = ConflictClauseProof([(2,), (-2,)], ENDING_FINAL_PAIR)
        assert list(proof) == [(2,), (-2,)]
        assert proof[0] == (2,)

    def test_equality(self):
        a = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        b = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        assert a == b

    def test_as_clause_objects(self):
        proof = ConflictClauseProof([(2, 1), (-1,), (1,)],
                                    ENDING_FINAL_PAIR)
        assert proof.as_clause_objects()[0].literals == (1, 2)

    def test_repr(self):
        proof = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        assert "num_clauses=2" in repr(proof)
