"""Tests for learned-clause minimization (chain-exact)."""

import random

import pytest

from repro.benchgen.php import pigeonhole
from repro.core.clause import Clause
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.resolution import ResolutionGraphProof
from repro.solver.cdcl import solve
from repro.solver.dpll import dpll_solve
from repro.verify.verification import verify_proof_v2

from tests.conftest import random_formula


def fold_chain(log, step):
    current = Clause(log.literals_of(step.antecedents[0]))
    for ref, pivot in zip(step.antecedents[1:], step.pivots):
        current = current.resolve(Clause(log.literals_of(ref)),
                                  pivot=pivot)
    return current


class TestMinimization:
    def test_off_by_default(self):
        from repro.solver.cdcl import SolverOptions
        assert SolverOptions().minimize_clauses is False

    def test_reduces_proof_literals(self):
        formula = pigeonhole(6)
        plain = solve(formula, minimize_clauses=False)
        minimized = solve(formula, minimize_clauses=True)
        assert minimized.is_unsat
        assert (minimized.log.deduced_literal_count()
                < plain.log.deduced_literal_count())

    def test_chains_remain_exact(self):
        formula = pigeonhole(5)
        result = solve(formula, minimize_clauses=True)
        for step in result.log.steps:
            assert fold_chain(result.log, step) == Clause(step.literals)

    def test_proofs_still_verify(self):
        formula = pigeonhole(5)
        result = solve(formula, minimize_clauses=True)
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok
        assert ResolutionGraphProof.from_log(result.log).check().ok

    @pytest.mark.parametrize("seed", range(5))
    def test_differential_with_dpll(self, seed):
        rng = random.Random(8000 + seed)
        for _ in range(25):
            formula = random_formula(rng, rng.randint(3, 9),
                                     rng.randint(8, 40))
            minimized = solve(formula, minimize_clauses=True)
            assert minimized.status == dpll_solve(formula).status
            if minimized.is_sat:
                assert formula.is_satisfied_by(minimized.model)
            else:
                proof = ConflictClauseProof.from_log(minimized.log)
                assert verify_proof_v2(formula, proof).ok

    def test_works_with_adaptive_scheme(self):
        formula = pigeonhole(5)
        result = solve(formula, learning="adaptive",
                       minimize_clauses=True)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok
        assert ResolutionGraphProof.from_log(result.log).check().ok

    def test_minimized_clauses_never_longer(self):
        """Compare per-conflict clause lengths via proof statistics."""
        from repro.proofs.stats import analyze_log
        formula = pigeonhole(6)
        plain = analyze_log(solve(formula, minimize_clauses=False).log)
        minimized = analyze_log(solve(formula,
                                      minimize_clauses=True).log)
        assert (minimized.mean_clause_length
                <= plain.mean_clause_length)
