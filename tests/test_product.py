"""Tests for product machines and the counter SEC workload."""

import pytest

from repro.bmc.counters import binary_counter_system, gray_counter_system
from repro.bmc.models import fifo_pair_system
from repro.bmc.product import product_system
from repro.bmc.transition import TransitionSystem
from repro.bmc.unroll import unroll
from repro.circuits.netlist import Circuit
from repro.core.exceptions import ModelError
from repro.solver.cdcl import solve


class TestCounterModels:
    def test_binary_counts(self):
        system = binary_counter_system(3)
        init = {f"n[{i}]": False for i in range(3)}
        trace, _ = system.run(init, [{}] * 10)
        values = [sum(frame[f"n[{i}]"] << i for i in range(3))
                  for frame in trace]
        assert values == [i % 8 for i in range(11)]

    def test_gray_counts_in_gray_order(self):
        system = gray_counter_system(3)
        init = {f"g[{i}]": False for i in range(3)}
        trace, _ = system.run(init, [{}] * 8)
        values = [sum(frame[f"g[{i}]"] << i for i in range(3))
                  for frame in trace]
        expected = [i ^ (i >> 1) for i in range(8)] + [0]
        assert values == expected

    def test_width_validated(self):
        with pytest.raises(ModelError):
            gray_counter_system(1)


class TestProductSystem:
    def test_counters_equivalent_by_bmc(self):
        product = product_system(gray_counter_system(3),
                                 binary_counter_system(3))
        formula = unroll(product, 10).formula
        assert solve(formula).is_unsat

    def test_buggy_counter_exposed(self):
        product = product_system(
            gray_counter_system(3),
            binary_counter_system(3, buggy=True))
        formula = unroll(product, 6).formula
        assert solve(formula).is_sat

    def test_simulation_agrees(self):
        product = product_system(gray_counter_system(3),
                                 binary_counter_system(3))
        init = {var: product.init.get(var, False)
                for var in product.state_vars}
        _, bads = product.run(init, [{}] * 12)
        assert not any(bads)

    def test_input_mismatch_rejected(self):
        fifo = fifo_pair_system(4)
        with pytest.raises(ModelError, match="identical input"):
            product_system(fifo, gray_counter_system(3))

    def test_needs_observations(self):
        c = Circuit("s")
        s = c.add_input("s")
        c.set_output(c.NOT(s, name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        bare = TransitionSystem("bare", c, ["s"], init={"s": False})
        with pytest.raises(ModelError, match="observation"):
            product_system(bare, bare)

    def test_observation_count_checked(self):
        c = Circuit("s")
        s = c.add_input("s")
        c.set_output(c.NOT(s, name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        one_obs = TransitionSystem("one", c, ["s"], init={"s": False},
                                   observations=["s"])
        assert one_obs.observations == ["s"]
        with pytest.raises(ModelError, match="observation count"):
            product_system(one_obs, gray_counter_system(2))

    def test_bad_observation_net_rejected(self):
        c = Circuit("s")
        s = c.add_input("s")
        c.set_output(c.NOT(s, name="next_s"))
        c.set_output(c.CONST0(name="bad"))
        with pytest.raises(ModelError, match="not a net"):
            TransitionSystem("x", c, ["s"], init={"s": False},
                             observations=["ghost"])

    def test_own_bad_propagates(self):
        """A side's own bad flag makes the product bad."""
        c = Circuit("s")
        s = c.add_input("s")
        c.set_output(c.BUF(s, name="next_s"))
        c.set_output(c.BUF(s, name="bad"))  # bad when s
        left = TransitionSystem("l", c, ["s"], init={},
                                observations=["s"])
        product = product_system(left, left)
        formula = unroll(product, 2).formula
        # Frame 0 state is free: s=1 reaches bad.
        assert solve(formula).is_sat

    def test_init_circuits_merged(self):
        from repro.bmc.models import barrel_system
        left = barrel_system(4)
        # Give barrel an observation so the product accepts it.
        left.observations = ["r0"]
        right = barrel_system(4)
        right.observations = ["r0"]
        product = product_system(left, right)
        assert product.init_circuit is not None
        # Both tokens start one-hot but possibly at different slots:
        # observations may diverge, so this product is SAT — which
        # proves the merged init circuit allowed both inits.
        formula = unroll(product, 2).formula
        assert solve(formula).is_sat


class TestJointInit:
    def test_equivalence_over_all_consistent_starts(self):
        """With free per-side inits and the correspondence predicate,
        the counters agree from ANY consistent state pair — a genuine
        invariant proof, not just a trace replay."""
        from repro.bmc.counters import counters_joint_init

        product = product_system(
            gray_counter_system(3), binary_counter_system(3),
            joint_init=counters_joint_init(3), free_init=True)
        formula = unroll(product, 6).formula
        result = solve(formula)
        assert result.is_unsat
        assert result.stats.conflicts > 0  # needs actual search now

    def test_without_joint_init_free_start_diverges(self):
        product = product_system(
            gray_counter_system(3), binary_counter_system(3),
            free_init=True)
        formula = unroll(product, 2).formula
        assert solve(formula).is_sat

    def test_joint_init_output_validated(self):
        from repro.core.exceptions import ModelError

        bad = Circuit("two_outputs")
        x = bad.add_input("L.g[0]")
        bad.set_output(bad.BUF(x))
        bad.set_output(bad.NOT(x))
        with pytest.raises(ModelError, match="one output"):
            product_system(gray_counter_system(2),
                           binary_counter_system(2),
                           joint_init=bad, free_init=True)
