"""Integration tests: instrumentation threaded through verification.

Covers the observability acceptance contract: deterministic metrics
artifacts across configurations, worker-metric aggregation for
parallel runs, the ``REPRO_JOBS`` override, and — most load-bearing —
the guard asserting the disabled path (``obs=None``) never touches the
metrics registry or tracer at all.
"""

import io
import os

import pytest

from repro.obs import (
    MetricsRegistry,
    Obs,
    Tracer,
    deterministic_view,
    metrics_document,
    validate_metrics,
    validate_trace,
)
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import solve
from repro.verify.forward import check_drup
from repro.verify.parallel import default_jobs
from repro.verify.verification import (
    verify_proof_v1,
    verify_proof_v2,
)


def proof_of(formula):
    result = solve(formula)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


@pytest.fixture(scope="module")
def unsat_instance():
    """A nontrivial UNSAT formula + proof shared by this module."""
    from repro.benchgen.php import pigeonhole

    formula = pigeonhole(5)
    return formula, proof_of(formula)


class TestNoOpGuard:
    """obs=None (the default) must never enter the obs package."""

    @pytest.fixture
    def poisoned_obs(self, monkeypatch):
        def forbid(name):
            def boom(*args, **kwargs):
                raise AssertionError(
                    f"disabled path called {name} — the obs=None fast "
                    "path must never touch the observability layer")
            return boom

        monkeypatch.setattr(MetricsRegistry, "_get_or_create",
                            forbid("MetricsRegistry._get_or_create"))
        monkeypatch.setattr(Tracer, "span", forbid("Tracer.span"))
        monkeypatch.setattr(Tracer, "event", forbid("Tracer.event"))
        monkeypatch.setattr(Obs, "__init__", forbid("Obs()"))

    def test_v1_disabled_path(self, poisoned_obs, unsat_instance):
        formula, proof = unsat_instance
        for mode in ("rebuild", "incremental"):
            assert verify_proof_v1(formula, proof, mode=mode).ok

    def test_v2_disabled_path(self, poisoned_obs, unsat_instance):
        formula, proof = unsat_instance
        report = verify_proof_v2(formula, proof, mode="incremental")
        assert report.ok
        assert report.stats is not None  # stats stay on, registry off

    def test_drup_disabled_path(self, poisoned_obs):
        from repro.core.formula import CnfFormula
        from repro.proofs.drup import DrupProof

        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        result = solve(formula)
        assert result.is_unsat
        assert check_drup(formula, DrupProof.from_log(result.log)).ok


class TestStatsAlwaysOn:
    """Phase timing is cheap enough to run without obs attached."""

    def test_v1_report_has_stats(self, unsat_instance):
        formula, proof = unsat_instance
        report = verify_proof_v1(formula, proof)
        stats = report.stats
        assert stats is not None
        assert stats.checks == report.num_checked
        assert set(stats.phase_times) >= {"setup", "checks"}
        assert stats.total_time >= sum(stats.phase_times.values()) * 0.5
        assert stats.slowest_checks == ()  # per-check timing needs obs

    def test_slowest_checks_need_obs(self, unsat_instance):
        formula, proof = unsat_instance
        obs = Obs(metrics=MetricsRegistry())
        report = verify_proof_v1(formula, proof, obs=obs)
        slowest = report.stats.slowest_checks
        assert 0 < len(slowest) <= 5
        assert all(0 <= index < len(proof) for index, _ in slowest)
        times = [seconds for _, seconds in slowest]
        assert times == sorted(times, reverse=True)


class TestInstrumentedRuns:
    def _run(self, formula, proof, **kwargs):
        obs = Obs(metrics=MetricsRegistry(), tracer=Tracer())
        report = verify_proof_v1(formula, proof, obs=obs, **kwargs)
        assert report.ok
        doc = metrics_document(
            obs.metrics, run={"id": obs.run_id, "command": "test"},
            stats=report.stats.as_dict())
        assert validate_metrics(doc) == []
        return report, doc, obs

    def test_sequential_metrics_complete(self, unsat_instance):
        formula, proof = unsat_instance
        report, doc, obs = self._run(formula, proof, mode="incremental")
        metrics = doc["metrics"]
        assert metrics["repro_verify_checks_total"]["value"] \
            == report.num_checked
        hist = metrics["repro_check_seconds"]["value"]
        assert hist["count"] == report.num_checked
        assert metrics["repro_bcp_assignments_total"]["value"] \
            == report.bcp_counters["assignments"]
        assert "repro_checker_root_builds_total" in metrics
        buffer = io.StringIO()
        obs.tracer.write_jsonl(buffer)
        from repro.obs import read_jsonl

        events = read_jsonl(io.StringIO(buffer.getvalue()))
        assert validate_trace(events) == []
        check_spans = [e for e in events
                       if e["name"] == "check" and e["type"] == "begin"]
        assert len(check_spans) == report.num_checked

    def test_v2_marked_ratio(self, unsat_instance):
        formula, proof = unsat_instance
        obs = Obs(metrics=MetricsRegistry())
        report = verify_proof_v2(formula, proof, obs=obs)
        assert report.ok
        snap = obs.metrics.snapshot()
        ratio = snap["repro_verify_marked_ratio"]["value"]["value"]
        assert ratio == pytest.approx(report.num_checked / len(proof))
        assert snap["repro_verify_checks_skipped_total"]["value"] \
            == report.num_skipped

    @pytest.mark.parametrize("kwargs", [
        {"order": "backward", "mode": "rebuild"},
        {"order": "backward", "mode": "incremental"},
        {"order": "forward", "mode": "rebuild"},
        {"jobs": 2, "mode": "incremental"},
    ])
    def test_metrics_deterministic_across_reruns(self, unsat_instance,
                                                 kwargs):
        """Rerunning one configuration yields an identical
        deterministic view — the --metrics-out stability contract."""
        formula, proof = unsat_instance
        _, doc_one, _ = self._run(formula, proof, **kwargs)
        _, doc_two, _ = self._run(formula, proof, **kwargs)
        assert deterministic_view(doc_one) == deterministic_view(doc_two)

    def test_sequential_configs_agree_on_check_totals(self,
                                                      unsat_instance):
        """Order and mode change scheduling-independent metrics not at
        all: same checks_total either way."""
        formula, proof = unsat_instance
        _, backward, _ = self._run(formula, proof, order="backward",
                                   mode="incremental")
        _, forward, _ = self._run(formula, proof, order="forward",
                                  mode="incremental")
        key = "repro_verify_checks_total"
        assert backward["metrics"][key] == forward["metrics"][key]


@pytest.mark.skipif("fork" not in
                    __import__("multiprocessing").get_all_start_methods(),
                    reason="parallel backend needs fork")
class TestParallelAggregation:
    def test_worker_metrics_merge_into_parent(self, unsat_instance):
        formula, proof = unsat_instance
        obs = Obs(metrics=MetricsRegistry(), tracer=Tracer())
        report = verify_proof_v1(formula, proof, mode="incremental",
                                 jobs=2, obs=obs)
        assert report.ok
        snap = obs.metrics.snapshot()
        # Per-check observations made inside workers reach the parent.
        assert snap["repro_check_seconds"]["value"]["count"] \
            == report.num_checked
        assert snap["repro_verify_checks_total"]["value"] \
            == report.num_checked
        assert snap["repro_parallel_shards_total"]["value"] > 0
        # Healthy run: failure counters present and zero ("measured,
        # none" — not absent).
        assert snap["repro_parallel_worker_failures_total"]["value"] == 0
        assert snap["repro_parallel_retries_total"]["value"] == 0
        # BCP totals come from the fold of worker counter deltas; they
        # must match the report exactly (no double counting).
        assert snap["repro_bcp_assignments_total"]["value"] \
            == report.bcp_counters["assignments"]

    def test_worker_spans_replayed_with_shard_attr(self, unsat_instance):
        formula, proof = unsat_instance
        obs = Obs(metrics=MetricsRegistry(), tracer=Tracer())
        assert verify_proof_v1(formula, proof, jobs=2, obs=obs).ok
        shard_spans = [e for e in obs.tracer.events
                       if e["name"] == "shard" and e["type"] == "begin"]
        assert shard_spans
        assert all("shard" in e["attrs"] for e in shard_spans)
        buffer = io.StringIO()
        obs.tracer.write_jsonl(buffer)
        from repro.obs import read_jsonl

        assert validate_trace(
            read_jsonl(io.StringIO(buffer.getvalue()))) == []


class TestReproJobsOverride:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_bad_values_rejected(self, monkeypatch):
        for bad in ("zero", "0", "-2", "1.5"):
            monkeypatch.setenv("REPRO_JOBS", bad)
            with pytest.raises(ValueError, match="REPRO_JOBS"):
                default_jobs()

    def test_unset_uses_cpu_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() >= 1

    def test_resolution_recorded(self, monkeypatch, unsat_instance):
        monkeypatch.setenv("REPRO_JOBS", "1")
        formula, proof = unsat_instance
        obs = Obs(metrics=MetricsRegistry(), tracer=Tracer())
        assert verify_proof_v1(formula, proof, jobs=None, obs=obs).ok
        snap = obs.metrics.snapshot()
        assert snap["repro_verify_jobs"]["value"]["value"] == 1
        resolved = [e for e in obs.tracer.events
                    if e["name"] == "jobs_resolved"]
        assert resolved
        assert resolved[0]["attrs"] == {"jobs": 1,
                                        "source": "env:REPRO_JOBS"}


class TestProgressIntegration:
    def test_progress_lines_on_stream(self, unsat_instance):
        formula, proof = unsat_instance
        stream = io.StringIO()
        obs = Obs(progress_stream=stream, progress_interval=0)
        report = verify_proof_v1(formula, proof, obs=obs)
        assert report.ok
        lines = stream.getvalue().splitlines()
        assert lines
        assert all(line.startswith("c progress: ") for line in lines)
        assert lines[-1].startswith(
            f"c progress: {report.num_checked}/{len(proof)} checks")
