"""Tests for the logic rewriting pass and random circuit generator."""

import random

import pytest

from repro.circuits.library import (
    alu,
    barrel_rotator,
    carry_select_adder,
    parity_tree,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.circuits.miter import check_equivalence
from repro.circuits.netlist import Circuit
from repro.circuits.random_circuits import (
    random_circuit,
    random_equivalence_pair,
)
from repro.circuits.rewrite import rewrite_circuit, rewrite_statistics
from repro.core.exceptions import CircuitError


def assert_equivalent_by_simulation(original, optimized, trials=150,
                                    seed=0):
    rng = random.Random(seed)
    for _ in range(trials):
        assignment = {net: rng.random() < 0.5
                      for net in original.inputs}
        got = [optimized.simulate(assignment)[net]
               for net in optimized.outputs]
        want = [original.simulate(assignment)[net]
                for net in original.outputs]
        assert got == want, assignment


class TestRewriteRules:
    def build(self, builder):
        c = Circuit("t")
        builder(c)
        return c

    def test_constant_folding_and(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output(c.AND(a, c.CONST0(), name="y"))
        optimized = rewrite_circuit(c)
        assert optimized.num_gates <= 2  # just a constant + buffer
        assert_equivalent_by_simulation(c, optimized)

    def test_identity_elimination_or(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output(c.OR(a, c.CONST0(), name="y"))
        optimized = rewrite_circuit(c)
        assert_equivalent_by_simulation(c, optimized)
        # y == a: only the output buffer remains.
        assert optimized.num_gates == 1

    def test_double_negation(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output(c.NOT(c.NOT(a), name="y"))
        optimized = rewrite_circuit(c)
        assert optimized.num_gates == 1  # buffer only
        assert_equivalent_by_simulation(c, optimized)

    def test_duplicate_collapse(self):
        c = Circuit("t")
        a, b = c.add_inputs(["a", "b"])
        c.set_output(c.AND(a, a, b, name="y"))
        assert_equivalent_by_simulation(c, rewrite_circuit(c))

    def test_complement_annihilation(self):
        c = Circuit("t")
        a, b = c.add_inputs(["a", "b"])
        c.set_output(c.AND(a, c.NOT(a), b, name="y"))
        optimized = rewrite_circuit(c)
        assert_equivalent_by_simulation(c, optimized)

    def test_xor_with_constant(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output(c.add_gate("XOR", (a, c.CONST1()), name="y"))
        optimized = rewrite_circuit(c)
        assert_equivalent_by_simulation(c, optimized)

    def test_xor_self_cancels(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output(c.add_gate("XOR", (a, a), name="y"))
        assert_equivalent_by_simulation(c, rewrite_circuit(c))

    def test_xnor_handled(self):
        c = Circuit("t")
        a, b = c.add_inputs(["a", "b"])
        c.set_output(c.XNOR(a, b, name="y"))
        assert_equivalent_by_simulation(c, rewrite_circuit(c))

    def test_mux_same_branches(self):
        c = Circuit("t")
        s, a = c.add_inputs(["s", "a"])
        c.set_output(c.MUX(s, a, a, name="y"))
        optimized = rewrite_circuit(c)
        assert optimized.num_gates == 1
        assert_equivalent_by_simulation(c, optimized)

    def test_mux_as_passthrough(self):
        c = Circuit("t")
        s = c.add_input("s")
        c.set_output(c.MUX(s, c.CONST0(), c.CONST1(), name="y"))
        assert_equivalent_by_simulation(c, rewrite_circuit(c))

    def test_mux_complement_branches_becomes_xor(self):
        c = Circuit("t")
        s, a = c.add_inputs(["s", "a"])
        c.set_output(c.MUX(s, a, c.NOT(a), name="y"))
        assert_equivalent_by_simulation(c, rewrite_circuit(c))

    def test_common_subexpression_elimination(self):
        c = Circuit("t")
        a, b = c.add_inputs(["a", "b"])
        first = c.AND(a, b)
        second = c.AND(b, a)  # same function, swapped operands
        c.set_output(c.OR(first, second, name="y"))
        optimized = rewrite_circuit(c)
        assert_equivalent_by_simulation(c, optimized)
        # OR(x, x) collapsed after CSE: only AND + buffer remain.
        assert optimized.num_gates == 2

    def test_nand_nor_handled(self):
        c = Circuit("t")
        a, b = c.add_inputs(["a", "b"])
        c.set_output(c.NAND(a, b, name="y1"))
        c.set_output(c.NOR(a, b, name="y2"))
        assert_equivalent_by_simulation(c, rewrite_circuit(c))


@pytest.mark.parametrize("builder", [
    lambda: ripple_carry_adder(5),
    lambda: carry_select_adder(5),
    lambda: wallace_multiplier(3),
    lambda: alu(3),
    lambda: barrel_rotator(8),
    lambda: parity_tree(9),
])
class TestLibraryCircuits:
    def test_rewrite_preserves_function(self, builder):
        circuit = builder()
        assert_equivalent_by_simulation(circuit,
                                        rewrite_circuit(circuit))

    def test_rewrite_never_grows(self, builder):
        stats = rewrite_statistics(builder())
        assert stats["gates_after"] <= stats["gates_before"]


class TestRandomCircuits:
    @pytest.mark.parametrize("seed", range(8))
    def test_pair_equivalent_by_sat(self, seed):
        original, optimized = random_equivalence_pair(7, 50, seed=seed)
        equivalent, counterexample = check_equivalence(original,
                                                       optimized)
        assert equivalent, counterexample

    def test_rewriting_shrinks_redundant_circuits(self):
        original = random_circuit(8, 120, seed=3, redundancy=0.4)
        stats = rewrite_statistics(original)
        assert stats["gates_after"] < stats["gates_before"]
        assert stats["folds"] > 0

    def test_deterministic(self):
        a = random_circuit(6, 30, seed=9)
        b = random_circuit(6, 30, seed=9)
        assert [g.op for g in a.gates] == [g.op for g in b.gates]
        assert a.outputs == b.outputs

    def test_validation(self):
        with pytest.raises(CircuitError):
            random_circuit(1, 10)
        with pytest.raises(CircuitError):
            random_circuit(4, 0)

    def test_output_count(self):
        circuit = random_circuit(8, 40, num_outputs=3, seed=1)
        assert len(circuit.outputs) == 3
