"""Streaming bounded-memory verification (:mod:`repro.verify.streaming`).

Pins the tentpole contract: one pass over the trace file, deletions
evict clauses from the live window, memory budgets degrade to a typed
partial report, and a checkpointed run resumed after an interruption
reaches the *same verdict with the same cumulative counts* as an
uninterrupted one.  The acceptance metric — a proof whose total
addition count is 10x the live-clause cap still verifies — is asserted
directly.
"""

import json

import pytest

from repro.bcp import ENGINES
from repro.benchgen.streaming import (
    deletion_chain,
    deletion_chain_formula,
    write_deletion_chain_drup,
)
from repro.cli import (
    EXIT_ERROR,
    EXIT_PARSE_ERROR,
    EXIT_PROOF_BAD,
    EXIT_RESOURCE_LIMIT,
    main,
)
from repro.core.dimacs import write_dimacs
from repro.core.exceptions import CheckpointError, ProofFormatError
from repro.core.formula import CnfFormula
from repro.proofs.drup import format_drup, write_drup
from repro.verify import CheckBudget
from repro.verify.forward import check_drup
from repro.verify.report import (
    PROOF_IS_CORRECT,
    PROOF_IS_NOT_CORRECT,
    RESOURCE_LIMIT_EXCEEDED,
)
from repro.verify.streaming import (
    load_checkpoint,
    verify_stream,
)

REMOVAL_ENGINES = [e for e in ("watched", "arena", "vector")
                   if e in ENGINES]

N = 400
WINDOW = 4


@pytest.fixture(scope="module")
def chain():
    return deletion_chain(N, window=WINDOW)


@pytest.fixture
def chain_files(tmp_path):
    cnf = tmp_path / "chain.cnf"
    drup = tmp_path / "chain.drup"
    write_dimacs(deletion_chain_formula(N), cnf)
    write_deletion_chain_drup(drup, N, window=WINDOW)
    return cnf, drup


@pytest.fixture
def chain_drup(chain, tmp_path):
    _, proof = chain
    path = tmp_path / "chain.drup"
    write_drup(proof, path)
    return path


class TestVerdicts:
    @pytest.mark.parametrize("engine", REMOVAL_ENGINES)
    def test_correct_chain(self, chain, chain_drup, engine):
        formula, _ = chain
        report = verify_stream(formula, chain_drup,
                               engine_cls=engine)
        assert report.outcome == PROOF_IS_CORRECT
        assert report.ok
        assert report.num_additions == N
        assert report.engine == engine

    def test_matches_in_memory_forward_checker(self, chain,
                                               chain_drup):
        formula, proof = chain
        streamed = verify_stream(formula, chain_drup)
        in_memory = check_drup(formula, proof)
        assert streamed.outcome == in_memory.outcome
        assert streamed.num_additions == in_memory.num_additions
        assert streamed.num_deletions == in_memory.num_deletions

    def test_engines_agree_on_props(self, chain, chain_drup):
        formula, _ = chain
        props = {
            engine: verify_stream(
                formula, chain_drup,
                engine_cls=engine).bcp_counters["assignments"]
            for engine in REMOVAL_ENGINES}
        assert len(set(props.values())) == 1, props

    def test_non_rup_addition_rejected(self, tmp_path):
        formula = CnfFormula([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        path = tmp_path / "bad.drup"
        path.write_text("3 0\n0\n")  # unconstrained fresh variable
        report = verify_stream(CnfFormula(list(formula), num_vars=3),
                               path)
        assert report.outcome == PROOF_IS_NOT_CORRECT
        assert report.failed_event_index == 0
        assert "not RUP" in report.failure_reason

    def test_trace_without_empty_clause(self, chain, tmp_path):
        formula, proof = chain
        clipped = [e for e in proof.events if e.literals
                   or e.kind != "add"]
        path = tmp_path / "clipped.drup"
        path.write_text(format_drup(type(proof)(clipped)))
        report = verify_stream(formula, path)
        assert report.outcome == PROOF_IS_NOT_CORRECT
        assert "never derives the empty clause" \
            in report.failure_reason

    def test_counting_engine_rejected(self, chain, chain_drup):
        formula, _ = chain
        with pytest.raises(ValueError, match="does not support"):
            verify_stream(formula, chain_drup, engine_cls="counting")


class TestWindow:
    def test_live_set_stays_bounded(self, chain, chain_drup):
        formula, _ = chain
        report = verify_stream(formula, chain_drup)
        # Formula clauses get deleted as the chain is consumed, and
        # proof additions are evicted `WINDOW` steps behind: the peak
        # live set is a small constant over the formula size.
        assert report.peak_live_clauses <= formula.num_clauses \
            + WINDOW + 2
        assert report.window_shifts > 0

    def test_ten_x_over_cap_acceptance(self, tmp_path):
        """The ISSUE's acceptance metric: total additions = 10x the
        live-clause cap, verified to the correct verdict under that
        cap."""
        cap = 40
        n = 10 * cap
        cnf = tmp_path / "cap.cnf"
        drup = tmp_path / "cap.drup"
        write_dimacs(deletion_chain_formula(n), cnf)
        info = write_deletion_chain_drup(drup, n, window=8)
        assert info["additions"] == 10 * cap
        assert info["peak_live_additions"] <= cap
        from repro.core.dimacs import read_dimacs

        report = verify_stream(
            read_dimacs(cnf), drup,
            budget=CheckBudget(max_live_clauses=cap))
        assert report.outcome == PROOF_IS_CORRECT
        assert report.num_additions == 10 * cap


class TestBudgets:
    def test_live_clause_budget_partial(self, chain, chain_files):
        formula, _ = chain
        _, drup = chain_files
        report = verify_stream(
            formula, drup, budget=CheckBudget(max_live_clauses=2))
        assert report.outcome == RESOURCE_LIMIT_EXCEEDED
        assert report.exhausted and not report.ok
        assert "live-clause budget" in report.failure_reason
        assert report.stopped_at_event is not None

    def test_byte_budget_partial(self, chain, chain_drup):
        formula, _ = chain
        report = verify_stream(formula, chain_drup,
                               budget=CheckBudget(max_bytes=32))
        assert report.outcome == RESOURCE_LIMIT_EXCEEDED
        assert "memory budget" in report.failure_reason

    def test_props_budget_partial_then_resume(self, chain, tmp_path):
        formula, proof = chain
        drup = tmp_path / "chain.drup"
        write_drup(proof, drup)
        token = tmp_path / "ckpt.json"
        partial = verify_stream(
            formula, drup, budget=CheckBudget(max_props=1500),
            checkpoint_path=token, checkpoint_every=50)
        assert partial.outcome == RESOURCE_LIMIT_EXCEEDED
        assert token.exists()
        assert partial.checkpoint_path == str(token)

        resumed = verify_stream(formula, drup, checkpoint_path=token,
                                resume=True)
        full = verify_stream(formula, drup)
        assert resumed.outcome == PROOF_IS_CORRECT
        assert resumed.num_additions == full.num_additions == N
        assert resumed.num_deletions == full.num_deletions
        assert resumed.resumed_from_event is not None
        assert not token.exists(), "spent token must be deleted"

    def test_resumed_props_are_cumulative(self, chain, tmp_path):
        formula, proof = chain
        drup = tmp_path / "chain.drup"
        write_drup(proof, drup)
        token = tmp_path / "ckpt.json"
        verify_stream(formula, drup,
                      budget=CheckBudget(max_props=1500),
                      checkpoint_path=token, checkpoint_every=50)
        # The same cumulative cap re-trips immediately on resume: the
        # spent work is pre-charged, not forgotten.
        again = verify_stream(formula, drup,
                              budget=CheckBudget(max_props=1500),
                              checkpoint_path=token, resume=True)
        assert again.outcome == RESOURCE_LIMIT_EXCEEDED


class TestCheckpoints:
    def test_schema_valid_and_loadable(self, chain, tmp_path):
        formula, proof = chain
        drup = tmp_path / "chain.drup"
        write_drup(proof, drup)
        token = tmp_path / "ckpt.json"
        verify_stream(formula, drup,
                      budget=CheckBudget(max_props=1500),
                      checkpoint_path=token, checkpoint_every=50)
        doc = load_checkpoint(token)   # validates internally
        assert doc["schema"] == "repro.obs.checkpoint/v1"
        assert doc["additions"] > 0
        raw = json.loads(token.read_text())
        assert raw == doc

    def test_verdict_deletes_checkpoint(self, chain, tmp_path):
        formula, proof = chain
        drup = tmp_path / "chain.drup"
        write_drup(proof, drup)
        token = tmp_path / "ckpt.json"
        report = verify_stream(formula, drup, checkpoint_path=token,
                               checkpoint_every=50)
        assert report.ok
        assert report.checkpoints_written > 0
        assert not token.exists()
        assert report.checkpoint_path is None

    def test_missing_token(self, chain, chain_drup, tmp_path):
        formula, _ = chain
        with pytest.raises(CheckpointError, match="no checkpoint"):
            verify_stream(formula, chain_drup,
                          checkpoint_path=tmp_path / "nope.json",
                          resume=True)

    def test_garbage_token(self, chain, chain_drup, tmp_path):
        formula, _ = chain
        token = tmp_path / "garbage.json"
        token.write_text("{not json")
        with pytest.raises(CheckpointError):
            verify_stream(formula, chain_drup, checkpoint_path=token,
                          resume=True)

    def test_token_from_other_formula_refused(self, chain, tmp_path):
        formula, proof = chain
        drup = tmp_path / "chain.drup"
        write_drup(proof, drup)
        token = tmp_path / "ckpt.json"
        verify_stream(formula, drup,
                      budget=CheckBudget(max_props=1500),
                      checkpoint_path=token, checkpoint_every=50)
        other = deletion_chain_formula(N + 1)
        with pytest.raises(CheckpointError, match="different formula"):
            verify_stream(other, drup, checkpoint_path=token,
                          resume=True)

    def test_resume_requires_checkpoint_path(self, chain, chain_drup):
        formula, _ = chain
        with pytest.raises(ValueError, match="checkpoint_path"):
            verify_stream(formula, chain_drup, resume=True)


class TestDeletions:
    def test_strict_unknown_deletion_raises(self, chain, tmp_path):
        formula, _ = chain
        path = tmp_path / "bogus.drup"
        path.write_text("2 0\nd 5 7 0\n0\n")
        with pytest.raises(ProofFormatError,
                           match="unknown or already-deleted"):
            verify_stream(formula, path)

    def test_lenient_unknown_deletion_warns(self, chain, tmp_path):
        formula, _ = chain
        path = tmp_path / "bogus.drup"
        path.write_text("2 0\nd 5 7 0\n0\n")
        report = verify_stream(formula, path, lenient_deletions=True)
        assert report.ok
        assert any("skipped deletion" in w for w in report.warnings)

    def test_double_deletion_is_unknown(self, chain, tmp_path):
        formula, _ = chain
        path = tmp_path / "double.drup"
        path.write_text("2 0\nd 2 0\nd 2 0\n0\n")
        with pytest.raises(ProofFormatError):
            verify_stream(formula, path)


class TestCli:
    def test_correct_chain(self, chain_files, capsys):
        cnf, drup = chain_files
        assert main(["verify-stream", str(cnf), str(drup)]) == 0
        out = capsys.readouterr().out
        assert "s PROOF_IS_CORRECT" in out
        assert "window_shifts=" in out

    def test_budget_exit_and_resume(self, chain_files, tmp_path,
                                    capsys):
        cnf, drup = chain_files
        token = tmp_path / "tok.json"
        code = main(["verify-stream", str(cnf), str(drup),
                     "--max-props", "1500", "--checkpoint",
                     str(token), "--checkpoint-every", "50"])
        assert code == EXIT_RESOURCE_LIMIT
        assert "resume token" in capsys.readouterr().out
        assert token.exists()
        code = main(["verify-stream", str(cnf), str(drup),
                     "--checkpoint", str(token), "--resume"])
        assert code == 0
        out = capsys.readouterr().out
        assert "s PROOF_IS_CORRECT" in out
        assert f"additions={N} " in out
        assert "resumed from event" in out

    def test_parse_error_exit(self, chain_files, tmp_path, capsys):
        cnf, _ = chain_files
        torn = tmp_path / "torn.drup"
        torn.write_text("2 0\n3 ")
        assert main(["verify-stream", str(cnf), str(torn)]) \
            == EXIT_PARSE_ERROR
        assert "c error:" in capsys.readouterr().err

    def test_bad_proof_exit(self, chain_files, tmp_path, capsys):
        cnf, _ = chain_files
        never = tmp_path / "never.drup"
        never.write_text("2 0\n")
        assert main(["verify-stream", str(cnf), str(never)]) \
            == EXIT_PROOF_BAD

    def test_resume_without_checkpoint_is_an_error(self, chain_files,
                                                   capsys):
        cnf, drup = chain_files
        assert main(["verify-stream", str(cnf), str(drup),
                     "--resume"]) == EXIT_ERROR
        assert "--resume requires --checkpoint" \
            in capsys.readouterr().err

    def test_stale_token_is_an_error_not_a_traceback(
            self, chain_files, tmp_path, capsys):
        cnf, drup = chain_files
        token = tmp_path / "stale.json"
        token.write_text('{"schema": "wrong"}')
        assert main(["verify-stream", str(cnf), str(drup),
                     "--checkpoint", str(token), "--resume"]) \
            == EXIT_ERROR
        assert "c error:" in capsys.readouterr().err
