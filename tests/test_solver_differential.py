"""Differential tests: CDCL vs reference DPLL vs brute force."""

import random

import pytest
from hypothesis import given, settings

from repro.core.clause import Clause
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import solve
from repro.solver.dpll import dpll_solve
from repro.verify.verification import verify_proof_v2

from tests.conftest import brute_force_sat, cnf_formulas, random_formula


class TestDpllReference:
    def test_dpll_sat(self, tiny_sat):
        result = dpll_solve(tiny_sat)
        assert result.is_sat
        assert tiny_sat.is_satisfied_by(result.model)

    def test_dpll_unsat(self, tiny_unsat):
        assert dpll_solve(tiny_unsat).is_unsat

    def test_dpll_empty_clause(self):
        from repro.core.formula import CnfFormula
        assert dpll_solve(CnfFormula([[]])).is_unsat

    def test_dpll_vs_bruteforce(self):
        rng = random.Random(100)
        for _ in range(60):
            formula = random_formula(rng, rng.randint(2, 7),
                                     rng.randint(2, 20))
            assert dpll_solve(formula).is_sat == brute_force_sat(formula)


class TestCdclVsDpll:
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_batches(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            formula = random_formula(rng, rng.randint(2, 9),
                                     rng.randint(3, 35))
            cdcl = solve(formula)
            dpll = dpll_solve(formula)
            assert cdcl.status == dpll.status, formula.clauses
            if cdcl.is_sat:
                assert formula.is_satisfied_by(cdcl.model)

    @settings(max_examples=40, deadline=None)
    @given(cnf_formulas(max_vars=8, max_clauses=30))
    def test_hypothesis_formulas(self, formula):
        cdcl = solve(formula)
        dpll = dpll_solve(formula)
        assert cdcl.status == dpll.status
        if cdcl.is_sat:
            assert formula.is_satisfied_by(cdcl.model)

    @pytest.mark.parametrize("learning", ["1uip", "decision", "hybrid"])
    @pytest.mark.parametrize("engine", ["watched", "counting"])
    def test_all_configs_agree(self, learning, engine):
        rng = random.Random(hash((learning, engine)) & 0xFFFF)
        for _ in range(15):
            formula = random_formula(rng, rng.randint(3, 8),
                                     rng.randint(4, 30))
            result = solve(formula, learning=learning, engine=engine,
                           enable_deletion=(engine == "watched"))
            assert result.status == dpll_solve(formula).status


class TestEveryUnsatProofVerifies:
    """The central invariant: every UNSAT verdict carries a correct,
    independently verifiable proof."""

    @pytest.mark.parametrize("seed", range(4))
    def test_proofs_verify(self, seed):
        rng = random.Random(1000 + seed)
        unsat_seen = 0
        for _ in range(50):
            formula = random_formula(rng, rng.randint(3, 9),
                                     rng.randint(10, 40))
            result = solve(formula)
            if not result.is_unsat:
                continue
            unsat_seen += 1
            proof = ConflictClauseProof.from_log(result.log)
            report = verify_proof_v2(formula, proof)
            assert report.ok, formula.clauses
        assert unsat_seen > 0  # the batch must exercise the UNSAT path

    def test_duplicate_and_tautology_clauses(self):
        from repro.core.formula import CnfFormula
        formula = CnfFormula([[1, -1, 2], [1, 2], [1, 2], [-1, 2],
                              [1, -2], [-1, -2], [2, -2]])
        result = solve(formula)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok

    def test_clause_objects_preserved(self):
        from repro.core.formula import CnfFormula
        formula = CnfFormula([Clause([1]), Clause([-1])])
        result = solve(formula)
        assert result.is_unsat
        proof = ConflictClauseProof.from_log(result.log)
        assert verify_proof_v2(formula, proof).ok
