"""Exactness tests for the batched incremental kernel (vector-inc).

The kernel's contract is *bitwise observational equality* with the
scalar arena engine: same verdicts, same conflict clause ids, same
trail contents, and — the strictest form — the same propagation
counters, entry for entry, because ``total_work`` budgets are summed
from them.  The probe path only engages on watch rows of
``probe_min``+ entries, which realistic small test instances never
grow, so these tests subclass the kernel with ``probe_min`` forced
down to 1 — every row then takes the batched path and any divergence
from the arena loop (blocker staleness, retire-before-blocker order,
compaction, conflict-entry visit accounting) becomes visible on
pigeonhole-size inputs.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.bcp import ENGINES
from repro.bcp.arena import ArenaPropagator
from repro.bcp.engine import FALSE, TRUE
from repro.bcp.vector_inc import VectorIncPropagator
from repro.core.literals import encode
from repro.benchgen.registry import pigeonhole
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import solve
from repro.verify.verification import verify_proof_v1, verify_proof_v2


class ProbeAlways(VectorIncPropagator):
    """Every watch row takes the batched probe path."""

    probe_min = 1


@pytest.fixture(scope="module")
def solved():
    formula = pigeonhole(5)
    result = solve(formula, reduce_base=20, reduce_growth=10)
    assert result.is_unsat
    return formula, ConflictClauseProof.from_log(result.log)


def _counters(report):
    return tuple(sorted(report.bcp_counters.items()))


class TestProbeExactness:
    """The probed scan must be indistinguishable from the scalar one —
    including the counters the probe could most easily skew (a probe
    that skips retired-but-satisfied entries undercounts ``purged``; a
    probe that visits past a conflict overcounts ``watch_visits``)."""

    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    @pytest.mark.parametrize("order", ["backward", "forward"])
    def test_v1_counters_equal_arena(self, solved, mode, order):
        formula, proof = solved
        arena = verify_proof_v1(formula, proof, "arena",
                                order=order, mode=mode)
        probed = verify_proof_v1(formula, proof, ProbeAlways,
                                 order=order, mode=mode)
        assert probed.outcome == arena.outcome
        assert probed.failed_clause_index == arena.failed_clause_index
        assert _counters(probed) == _counters(arena)

    def test_default_threshold_also_exact(self, solved):
        """The shipped probe_min must be exact too — on instances this
        small it simply never probes, so equality is the scalar path
        reproducing the arena loop verbatim."""
        formula, proof = solved
        arena = verify_proof_v1(formula, proof, "arena",
                                mode="incremental")
        kernel = verify_proof_v1(formula, proof, "vector-inc",
                                 mode="incremental")
        assert kernel.engine == "vector-inc"
        assert _counters(kernel) == _counters(arena)

    def test_v2_marks_equal_arena(self, solved):
        formula, proof = solved
        arena = verify_proof_v2(formula, proof, "arena",
                                mode="incremental")
        probed = verify_proof_v2(formula, proof, ProbeAlways,
                                 mode="incremental")
        assert probed.outcome == arena.outcome
        assert probed.marked_proof_indices \
            == arena.marked_proof_indices

    def test_bad_proof_same_failure(self, solved):
        formula, proof = solved
        fresh = max(formula.num_vars, proof.max_var()) + 1
        bad = ConflictClauseProof([(fresh,)] + list(proof.clauses))
        arena = verify_proof_v1(formula, bad, "arena",
                                mode="incremental")
        probed = verify_proof_v1(formula, bad, ProbeAlways,
                                 mode="incremental")
        assert not probed.ok
        assert probed.failed_clause_index == arena.failed_clause_index
        assert _counters(probed) == _counters(arena)


class TestRetractionHeavy:
    """The incremental checker's per-check rewind is the kernel's
    hot retraction path: drive both engines through identical
    assume/propagate/unwind cycles directly and compare every
    observable after every step."""

    def _engines(self, formula):
        pair = []
        for cls in (ArenaPropagator, ProbeAlways):
            engine = cls(formula.num_vars)
            for clause in formula.clauses:
                engine.add_clause([encode(lit)
                                   for lit in clause.literals])
            pair.append(engine)
        return pair

    def _assert_mirror(self, kernel):
        # Mirror invariant: true_np[enc] == 1 iff values[enc] TRUE.
        values = np.asarray(kernel.values, dtype=np.int8)
        mirrored = kernel._true_np[:len(values)]
        assert bool(np.all((mirrored == 1) == (values == TRUE)))

    def test_lockstep_root_unwind_and_backtrack(self, solved):
        """The incremental checker's cycle: grow the root trail,
        retract a suffix with unwind_to, assume at a decision level,
        backtrack to root — both engines in lockstep, trail and mirror
        compared after every step."""
        formula, _ = solved
        arena, kernel = self._engines(formula)
        lits = [lit for clause in formula.clauses
                for lit in clause.literals]
        for round_no in range(12):
            # Root phase: enqueue at level 0, propagate, then retract
            # a suffix of the persistent trail (unwind_to never
            # crosses a decision-level boundary — none are open).
            mark = len(arena.trail)
            for offset in range(2):
                lit = lits[(round_no * 7 + offset * 13) % len(lits)]
                enc = encode(lit)
                assert arena.enqueue(enc, None) \
                    == kernel.enqueue(enc, None)
            assert arena.propagate() == kernel.propagate()
            assert list(arena.trail) == list(kernel.trail)
            keep = min(mark + (round_no % 3), len(arena.trail))
            arena.unwind_to(keep)
            kernel.unwind_to(keep)
            assert list(arena.trail) == list(kernel.trail)
            self._assert_mirror(kernel)
            # Assumption phase: a decision level, propagate, backtrack
            # all the way back to the root.
            lit = lits[(round_no * 11 + 5) % len(lits)]
            assert arena.assume(encode(lit)) \
                == kernel.assume(encode(lit))
            assert arena.propagate() == kernel.propagate()
            assert list(arena.trail) == list(kernel.trail)
            arena.backtrack(0)
            kernel.backtrack(0)
            assert list(arena.trail) == list(kernel.trail)
            self._assert_mirror(kernel)

    def test_backtrack_clears_mirror(self):
        engine = ProbeAlways(4)
        engine.add_clause([encode(1), encode(2)])
        engine.new_level()
        assert engine.assume(encode(-1))
        assert engine.propagate() is None
        assert engine.values[encode(2)] == TRUE
        assert engine._true_np[encode(2)] == 1
        engine.backtrack(0)
        assert engine._true_np[encode(2)] == 0
        assert engine._true_np[encode(-1)] == 0

    def test_grow_mirror_on_new_var(self):
        engine = ProbeAlways(1)
        for var in range(2, 40):
            engine.add_clause([encode(var - 1), encode(var)])
        enc = encode(39)
        assert enc < engine._true_np.shape[0]
        engine.new_level()
        assert engine.assume(enc)
        assert engine._true_np[enc] == 1


class TestRegistry:
    def test_registered(self):
        assert ENGINES["vector-inc"] is VectorIncPropagator
        assert VectorIncPropagator.kernel == "numpy"

    def test_auto_prefers_vector_inc_for_incremental(self):
        from repro.bcp import resolve_engine

        assert resolve_engine("auto", mode="incremental") \
            is VectorIncPropagator
        assert resolve_engine("auto", mode="rebuild") \
            is ENGINES["vector"]

    def test_removal_supported(self):
        # The incremental checker retires by ceiling, but forward DRUP
        # checking removes clauses; the kernel inherits the arena's
        # detach (which must work on promoted array('i') rows too).
        engine = ProbeAlways(3)
        cid = engine.add_clause([encode(1), encode(2), encode(3)])
        engine.remove_clause(cid)
        assert engine.clause_len(cid) == 0
