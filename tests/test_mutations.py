"""Differential fault-injection tests.

Every soundness-breaking mutation of a known-good proof must be
*rejected* by every checker configuration (or refused at parse time
with :class:`ProofFormatError`) — never accepted, and never crashed on
with anything outside the ``ReproError`` hierarchy.  Benign mutations
(clause duplication) must still be accepted, guarding against a
harness that "passes" by rejecting everything.
"""

import pytest

from repro.benchgen.registry import pigeonhole
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.proofs.drup import ADD, DrupEvent, DrupProof
from repro.solver.cdcl import solve
from repro.testing import (
    DEFAULT_V1_CONFIGS,
    EXPECT_ACCEPT,
    EXPECT_REJECT_ALL,
    EXPECT_REJECT_V1,
    KIND_CC,
    KIND_DRUP,
    ProofMutator,
    run_differential,
)
from repro.verify.forward import check_drup


def _solved(formula):
    result = solve(formula, reduce_base=20, reduce_growth=10)
    assert result.is_unsat
    return (formula, ConflictClauseProof.from_log(result.log),
            DrupProof.from_log(result.log))


@pytest.fixture(scope="module")
def tiny():
    return _solved(CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2],
                               [3, 4]]))


@pytest.fixture(scope="module")
def php():
    return _solved(pigeonhole(5))


class TestMutatorProperties:
    def test_operator_roster(self, php):
        formula, proof, drup = php
        mutations = ProofMutator(formula, proof, drup=drup).mutations()
        operators = {m.operator for m in mutations}
        assert len(operators) >= 8
        kinds = {m.kind for m in mutations}
        assert kinds == {KIND_CC, KIND_DRUP}

    def test_deterministic_for_seed(self, php):
        formula, proof, drup = php
        first = ProofMutator(formula, proof, drup=drup,
                             seed=42).mutations()
        second = ProofMutator(formula, proof, drup=drup,
                              seed=42).mutations()
        assert first == second

    def test_guaranteed_classes_present(self, php):
        """A real solver proof yields the strong expectation classes
        (on degenerate proofs the probes may downgrade them)."""
        formula, proof, drup = php
        mutations = ProofMutator(formula, proof, drup=drup).mutations()
        by_class = {}
        for mutation in mutations:
            by_class.setdefault(mutation.expectation, []).append(mutation)
        assert len(by_class[EXPECT_REJECT_ALL]) >= 5
        assert len(by_class[EXPECT_REJECT_V1]) >= 1
        assert len(by_class[EXPECT_ACCEPT]) >= 2

    def test_deletion_operators_exercised(self, php):
        formula, proof, drup = php
        assert drup.num_deletions > 0  # precondition for the operator
        mutations = ProofMutator(formula, proof, drup=drup).mutations()
        assert any(m.operator == "corrupt_deletion" for m in mutations)


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_tiny_all_configurations(self, tiny, seed):
        """Full config matrix (orders x modes x jobs 1/4) on the small
        instance: no expectation violated, no crash, v1 configs agree."""
        formula, proof, drup = tiny
        summary = run_differential(formula, proof, drup=drup, seed=seed)
        assert summary.ok, summary.problems
        assert summary.num_mutations >= 8
        assert summary.checker_runs > summary.num_mutations

    def test_php_with_deletions(self, php):
        """A deletion-bearing trace on a real instance; the jobs axis is
        trimmed to keep the sweep fast on one CPU."""
        formula, proof, drup = php
        configs = (("backward", "incremental", 1),
                   ("forward", "rebuild", 1))
        summary = run_differential(formula, proof, drup=drup, seed=3,
                                   v1_configs=configs)
        assert summary.ok, summary.problems
        counts = summary.by_expectation()
        assert counts.get(EXPECT_REJECT_ALL, 0) >= 5
        assert counts.get(EXPECT_ACCEPT, 0) >= 2

    def test_php_parallel_config(self, php):
        """One parallel configuration on the real instance, so a corrupt
        proof crossing the process pool is exercised too."""
        formula, proof, drup = php
        summary = run_differential(formula, proof, drup=None, seed=5,
                                   v1_configs=(("backward",
                                                "incremental", 4),))
        assert summary.ok, summary.problems


class TestCheckerHardening:
    def test_drup_foreign_variable_no_crash(self, tiny):
        """Regression: the harness found that a trace mentioning a
        variable outside the formula crashed the forward checker with
        IndexError instead of returning a verdict."""
        formula = tiny[0]
        foreign = formula.num_vars + 3
        trace = DrupProof([DrupEvent(ADD, (foreign,)),
                           DrupEvent(ADD, ())])
        report = check_drup(formula, trace)
        assert not report.ok

    def test_literal_zero_rejected_in_cc_proof(self):
        from repro.core.exceptions import ProofFormatError

        with pytest.raises(ProofFormatError):
            ConflictClauseProof([(1, 0), (1,), (-1,)])

    def test_literal_zero_rejected_in_drup_event(self):
        from repro.core.exceptions import ProofFormatError

        with pytest.raises(ProofFormatError):
            DrupEvent(ADD, (1, 0))

    def test_default_config_matrix_shape(self):
        assert len(DEFAULT_V1_CONFIGS) == 8
        assert {jobs for _, _, jobs in DEFAULT_V1_CONFIGS} == {1, 4}
