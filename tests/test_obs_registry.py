"""Tests for the metrics registry: semantics and merge algebra."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import (
    DEFAULT_WORK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_zero_increment_is_allowed(self):
        counter = Counter("c")
        counter.inc(0)
        assert counter.value == 0

    def test_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_merge_sums(self):
        counter = Counter("c")
        counter.inc(3)
        counter.merge(Counter("c").snapshot())
        counter.merge(7)
        assert counter.value == 10


class TestGauge:
    def test_tracks_last_value_and_max(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max == 5

    def test_unwritten_snapshot_max_is_zero(self):
        assert Gauge("g").snapshot() == {"value": 0.0, "max": 0.0}

    def test_merge_takes_max(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.merge({"value": 7, "max": 9})
        assert gauge.value == 7
        assert gauge.max == 9
        gauge.merge({"value": 1, "max": 1})
        assert gauge.value == 7

    def test_merge_into_unwritten_adopts(self):
        gauge = Gauge("g")
        gauge.merge({"value": -4, "max": -4})
        assert gauge.value == -4
        assert gauge.max == -4


class TestHistogram:
    def test_observe_buckets_inclusively(self):
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 1, 5, 10, 1000):
            hist.observe(value)
        # bounds are inclusive: 1 -> first bucket, 10 -> second.
        assert hist.counts == [2, 2, 0, 1]
        assert hist.count == 5
        assert hist.max == 1000

    def test_counts_carry_implicit_inf_bucket(self):
        hist = Histogram("h", buckets=DEFAULT_WORK_BUCKETS)
        assert len(hist.counts) == len(DEFAULT_WORK_BUCKETS) + 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(5, 1))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1, 1, 2))

    def test_merge_is_bucketwise(self):
        one = Histogram("h", buckets=(1, 10))
        two = Histogram("h", buckets=(1, 10))
        one.observe(0.5)
        two.observe(5)
        two.observe(50)
        one.merge(two.snapshot())
        assert one.counts == [1, 1, 1]
        assert one.count == 3
        assert one.max == 50

    def test_merge_rejects_mismatched_layout(self):
        one = Histogram("h", buckets=(1, 10))
        other = Histogram("h", buckets=(2, 20))
        with pytest.raises(ValueError, match="mismatched bucket"):
            one.merge(other.snapshot())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")

    def test_snapshot_is_sorted_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("c", buckets=(1,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_merge_unknown_kind_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric kind"):
            registry.merge({"x": {"kind": "summary", "value": 1}})

    def _shard_registry(self, seed: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("checks").inc(seed)
        registry.gauge("depth").set(seed * 2)
        hist = registry.histogram("work", buckets=(10, 100))
        for value in range(seed):
            hist.observe(value * 7)
        return registry

    def test_merge_is_order_insensitive(self):
        """The parallel parent folds shard snapshots in completion
        order, which is nondeterministic — totals must not care."""
        snaps = [self._shard_registry(seed).snapshot()
                 for seed in (3, 5, 8)]

        forward = MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        backward = MetricsRegistry()
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_is_associative(self):
        snaps = [self._shard_registry(seed).snapshot()
                 for seed in (2, 4, 6)]

        # (a + b) + c
        left = MetricsRegistry()
        left.merge(snaps[0])
        left.merge(snaps[1])
        grouped = MetricsRegistry()
        grouped.merge(left.snapshot())
        grouped.merge(snaps[2])

        # a + (b + c)
        right = MetricsRegistry()
        right.merge(snaps[1])
        right.merge(snaps[2])
        other = MetricsRegistry()
        other.merge(snaps[0])
        other.merge(right.snapshot())

        assert grouped.snapshot() == other.snapshot()
