"""Unit and property tests for the proof trace file format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exceptions import ProofFormatError
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.proofs.trace_format import (
    format_proof,
    parse_proof,
    read_proof,
    write_proof,
)


def sample_proof():
    return ConflictClauseProof([(1, 2), (-2, 3), (-1,), (1,)],
                               ENDING_FINAL_PAIR)


class TestFormat:
    def test_header(self):
        text = format_proof(sample_proof())
        assert text.startswith("p ccproof final_pair\n")

    def test_zero_terminated_lines(self):
        for line in format_proof(sample_proof()).splitlines()[1:]:
            assert line.endswith("0")

    def test_comment_lines(self):
        text = format_proof(sample_proof(), comment="one\ntwo")
        assert "c one\n" in text and "c two\n" in text

    def test_empty_clause_line(self):
        proof = ConflictClauseProof([(1,), ()], ENDING_EMPTY)
        assert "\n0\n" in format_proof(proof)


class TestParse:
    def test_roundtrip_simple(self):
        proof = sample_proof()
        assert parse_proof(format_proof(proof)) == proof

    def test_missing_header(self):
        with pytest.raises(ProofFormatError, match="missing"):
            parse_proof("1 0\n")

    def test_duplicate_header(self):
        with pytest.raises(ProofFormatError, match="duplicate"):
            parse_proof("p ccproof empty\np ccproof empty\n0\n")

    def test_bad_ending_name(self):
        with pytest.raises(ProofFormatError):
            parse_proof("p ccproof sometimes\n0\n")

    def test_bad_token(self):
        with pytest.raises(ProofFormatError, match="unexpected token"):
            parse_proof("p ccproof empty\n1 q 0\n0\n")

    def test_unterminated_clause(self):
        with pytest.raises(ProofFormatError, match="terminating"):
            parse_proof("p ccproof empty\n0\n1 2\n")

    def test_structure_still_validated(self):
        with pytest.raises(ProofFormatError):
            parse_proof("p ccproof final_pair\n1 2 0\n")

    @given(st.lists(
        st.lists(st.integers(min_value=-20, max_value=20).filter(bool),
                 min_size=1, max_size=5),
        min_size=0, max_size=10))
    def test_roundtrip_property(self, body):
        clauses = [tuple(c) for c in body] + [(7,), (-7,)]
        proof = ConflictClauseProof(clauses, ENDING_FINAL_PAIR)
        assert parse_proof(format_proof(proof)) == proof


class TestFileIo:
    def test_write_read(self, tmp_path):
        proof = sample_proof()
        path = tmp_path / "proof.ccp"
        write_proof(proof, path, comment="solver X")
        assert read_proof(path) == proof
