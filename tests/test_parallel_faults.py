"""Fault tolerance of the parallel verification1 backend.

Worker death (simulated with a hard ``os._exit``, as an OOM kill would
look) must never wedge a run or change its verdict: lost shards are
retried once on a fresh pool, then fall back to in-process sequential
checking, each step leaving a trace in the report's ``warnings`` /
``worker_failures``.
"""

import pytest

from repro.benchgen.registry import pigeonhole
from repro.proofs.conflict_clause import ConflictClauseProof
from repro.solver.cdcl import solve
from repro.verify import RESOURCE_LIMIT_EXCEEDED, CheckBudget
from repro.verify import parallel
from repro.verify.parallel import (
    clear_faults,
    fork_available,
    install_fault,
    make_shards,
    planned_shards,
    run_sharded_v1,
)
from repro.verify.verification import verify_proof_v1

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="fault-tolerance tests need the fork start method")


def _shards(formula, proof, mode="incremental", jobs=4):
    """The bounds the run under test will execute (the planner's
    partition — faults are keyed by exact shard bounds)."""
    return list(planned_shards(formula, proof, jobs, mode=mode).shards)


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    clear_faults()


@pytest.fixture(scope="module")
def instance():
    formula = pigeonhole(5)
    result = solve(formula, reduce_base=20, reduce_growth=10)
    assert result.is_unsat
    return formula, ConflictClauseProof.from_log(result.log)


@pytest.fixture(scope="module")
def bad_instance(instance):
    """The same proof with a unit over a fresh variable injected at
    position 0: F alone cannot derive it by BCP, so verification1 must
    fail exactly there (every genuine check still passes — its prefix
    only gained a clause)."""
    formula, proof = instance
    fresh = max(formula.num_vars, proof.max_var()) + 1
    clauses = [(fresh,)] + list(proof.clauses)
    return formula, ConflictClauseProof(clauses)


class TestShards:
    @pytest.mark.parametrize("num_indices,jobs",
                             [(1, 1), (7, 4), (100, 4), (3, 8)])
    def test_cover_exactly_once(self, num_indices, jobs):
        shards = make_shards(num_indices, jobs)
        seen = [index for lo, hi in shards for index in range(lo, hi)]
        assert sorted(seen) == list(range(num_indices))
        assert len(seen) == len(set(seen))

    def test_empty(self):
        assert make_shards(0, 4) == []


class TestWorkerDeath:
    def test_retry_recovers(self, instance):
        formula, proof = instance
        shards = _shards(formula, proof)
        install_fault(shards[0], deaths=1)
        report = verify_proof_v1(formula, proof, jobs=4,
                                 mode="incremental")
        assert report.ok
        assert report.num_checked == len(proof)
        assert report.worker_failures >= 1
        assert any("retrying" in w for w in report.warnings)

    def test_repeated_death_degrades_in_process(self, instance):
        formula, proof = instance
        shards = _shards(formula, proof)
        install_fault(shards[0], deaths=2)
        report = verify_proof_v1(formula, proof, jobs=4,
                                 mode="incremental")
        assert report.ok
        assert report.num_checked == len(proof)
        assert any("degraded" in w for w in report.warnings)

    def test_verdict_matches_sequential_on_bad_proof(self, bad_instance):
        formula, proof = bad_instance
        sequential = verify_proof_v1(formula, proof, jobs=1)
        assert not sequential.ok
        shards = _shards(formula, proof, mode="rebuild")
        install_fault(shards[-1], deaths=2)
        parallel_report = verify_proof_v1(formula, proof, jobs=4)
        assert not parallel_report.ok
        assert (parallel_report.failed_clause_index
                == sequential.failed_clause_index)


class TestDegradedPlatform:
    def test_no_fork_substitutes_arena_over_spawn(self, instance,
                                                  monkeypatch):
        """A fork-less platform no longer degrades to sequential: the
        workers run the shared-memory arena engine across ``spawn``."""
        formula, proof = instance
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        monkeypatch.setattr(parallel, "get_all_start_methods",
                            lambda: ["spawn"])
        report = verify_proof_v1(formula, proof, jobs=2)
        assert report.ok
        assert report.num_checked == len(proof)
        assert any("shared-memory arena engine" in w
                   for w in report.warnings)
        assert not any("unavailable" in w for w in report.warnings)

    def test_run_sharded_substitutes_arena_over_spawn(self, instance,
                                                      monkeypatch):
        from repro.bcp.watched import WatchedPropagator

        formula, proof = instance
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        monkeypatch.setattr(parallel, "get_all_start_methods",
                            lambda: ["spawn"])
        run = run_sharded_v1(formula, proof, WatchedPropagator,
                             "backward", "incremental", 2)
        assert run.failed_index is None
        assert run.num_checked == len(proof)
        assert any("shared-memory arena engine" in w
                   for w in run.warnings)

    def test_no_start_method_degrades_sequential(self, instance,
                                                 monkeypatch):
        """Only a platform with *no* start method at all degrades to
        the in-process sequential fallback (with a loud warning)."""
        from repro.bcp.watched import WatchedPropagator

        formula, proof = instance
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        monkeypatch.setattr(parallel, "get_all_start_methods",
                            lambda: [])
        run = run_sharded_v1(formula, proof, WatchedPropagator,
                             "backward", "incremental", 4)
        assert run.failed_index is None
        assert run.num_checked == len(proof)
        assert any("parallel backend unavailable" in w
                   for w in run.warnings)

    def test_forced_start_method_must_exist(self, instance, monkeypatch):
        from repro.bcp.watched import WatchedPropagator

        formula, proof = instance
        monkeypatch.setattr(parallel, "get_all_start_methods",
                            lambda: ["fork"])
        with pytest.raises(ValueError, match="not available"):
            run_sharded_v1(formula, proof, WatchedPropagator,
                           "backward", "incremental", 2,
                           start_method="spawn")


class TestParallelBudget:
    def test_deadline_yields_clean_partial_report(self, instance):
        formula, proof = instance
        report = verify_proof_v1(formula, proof, jobs=4,
                                 budget=CheckBudget(timeout=1e-6))
        assert report.outcome == RESOURCE_LIMIT_EXCEEDED
        assert not report.ok
        assert report.num_checked <= len(proof)
        assert report.failure_reason

    def test_props_budget_with_worker_death(self, instance):
        """Budget exhaustion and fault recovery compose: the run still
        ends in a well-formed partial report."""
        formula, proof = instance
        shards = _shards(formula, proof, mode="rebuild")
        install_fault(shards[0], deaths=1)
        report = verify_proof_v1(formula, proof, jobs=4,
                                 budget=CheckBudget(max_props=50))
        assert report.outcome in (RESOURCE_LIMIT_EXCEEDED,
                                  "proof_is_correct")
        assert report.num_checked <= len(proof)


class TestTraceReplayUnderFaults:
    """Shard retry and in-process degradation must leave the merged
    trace duplicate- and orphan-free: exactly one shard span per shard
    bound in the reconstructed timeline."""

    def _timeline(self, formula, proof, jobs=4):
        import io

        from repro.obs import (
            MetricsRegistry,
            Obs,
            Tracer,
            build_timeline,
            read_jsonl,
            validate_trace,
        )
        obs = Obs(metrics=MetricsRegistry(), tracer=Tracer())
        report = verify_proof_v1(formula, proof, jobs=jobs,
                                 mode="incremental", obs=obs)
        buf = io.StringIO()
        obs.tracer.write_jsonl(buf)
        events = read_jsonl(io.StringIO(buf.getvalue()))
        assert validate_trace(events) == []
        return report, build_timeline(events)

    def _assert_one_span_per_shard(self, doc, expected_shards):
        shard_spans = [s for s in doc["spans"]
                       if s["name"] == "shard"]
        bounds = sorted((s["attrs"]["lo"], s["attrs"]["hi"])
                        for s in shard_spans)
        assert bounds == sorted(expected_shards)
        assert len(bounds) == len(set(bounds))
        assert doc["dropped"]["orphans"] == 0
        assert doc["dropped"]["open"] == 0
        # Every shard span sits on a worker lane with cost attrs.
        for span in shard_spans:
            assert span["worker"].startswith("worker-")
            assert span["attrs"]["checks"] == (span["attrs"]["hi"]
                                               - span["attrs"]["lo"])
            assert span["attrs"]["props"] >= 0

    def test_retried_shard_yields_single_span(self, instance):
        formula, proof = instance
        shards = _shards(formula, proof)
        install_fault(shards[0], deaths=1)
        report, doc = self._timeline(formula, proof)
        assert report.ok
        assert report.worker_failures >= 1
        self._assert_one_span_per_shard(doc, shards)
        # Dedup happened at absorb time or merge time — either way
        # nothing duplicated survives and attribution is complete.
        assert len(doc["attribution"]["shards"]) == len(shards)
        assert doc["utilization"] is not None

    def test_degraded_shard_attempt_attr_and_single_span(
            self, instance):
        formula, proof = instance
        shards = _shards(formula, proof)
        install_fault(shards[0], deaths=2)
        report, doc = self._timeline(formula, proof)
        assert report.ok
        assert any("degraded" in w for w in report.warnings)
        self._assert_one_span_per_shard(doc, shards)
        degraded = next(s for s in doc["spans"]
                        if s["name"] == "shard"
                        and tuple(s["attrs"]["shard"]) == shards[0])
        assert degraded["attrs"]["attempt"] == 2

    def test_clean_run_attempt_zero_everywhere(self, instance):
        formula, proof = instance
        shards = _shards(formula, proof)
        report, doc = self._timeline(formula, proof)
        assert report.ok
        self._assert_one_span_per_shard(doc, shards)
        assert all(s["attrs"]["attempt"] == 0
                   for s in doc["spans"] if s["name"] == "shard")
        assert doc["dropped"]["duplicates"] == 0


class TestSpawnTraceRebasing:
    def test_spawn_run_yields_coherent_timeline(self, instance,
                                                monkeypatch):
        """Under ``REPRO_START_METHOD=spawn`` the workers rebase onto
        the parent's time axis (see ``repro.obs.spans.rebase_epoch``):
        shard spans must land *inside* the parent's pool span, carry
        the parent's trace id, and build a valid timeline — the
        regression this guards is worker timestamps on an unrelated
        monotonic origin."""
        import multiprocessing

        from repro.obs import MetricsRegistry, Obs, Tracer, \
            build_timeline, validate_timeline

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        formula, proof = instance
        obs = Obs(metrics=MetricsRegistry(), tracer=Tracer())
        report = verify_proof_v1(formula, proof, jobs=2,
                                 mode="incremental", obs=obs)
        assert report.ok
        assert all(e["trace"] == obs.tracer.trace_id
                   for e in obs.tracer.events)
        doc = build_timeline(obs.tracer.events)
        assert validate_timeline(doc) == []
        pool = next(s for s in doc["spans"] if s["name"] == "pool")
        shard_spans = [s for s in doc["spans"]
                       if s["name"] == "shard"]
        assert shard_spans
        slack = 2.0  # wall-anchor rebase is wall-read accurate
        for span in shard_spans:
            assert span["begin"] >= pool["begin"] - slack
            assert span["end"] <= pool["end"] + slack
        assert doc["utilization"] is not None
        assert doc["dropped"]["orphans"] == 0
