"""Tests for Proof_verification1 — including buggy-solver detection.

The whole point of the paper (Section 1) is catching buggy solvers, so
a large share of these tests corrupt correct proofs in targeted ways and
assert the verifier rejects them, pointing at a questionable clause.
"""

import random

import pytest

from repro.bcp.counting import CountingPropagator
from repro.benchgen.php import pigeonhole
from repro.core.formula import CnfFormula
from repro.proofs.conflict_clause import (
    ENDING_EMPTY,
    ENDING_FINAL_PAIR,
    ConflictClauseProof,
)
from repro.solver.cdcl import solve
from repro.verify.verification import verify_proof, verify_proof_v1

from tests.conftest import random_formula


def proof_of(formula, **solver_kwargs):
    result = solve(formula, **solver_kwargs)
    assert result.is_unsat
    return ConflictClauseProof.from_log(result.log)


class TestAcceptsCorrectProofs:
    def test_tiny(self, tiny_unsat):
        report = verify_proof_v1(tiny_unsat, proof_of(tiny_unsat))
        assert report.ok
        assert report.outcome == "proof_is_correct"
        assert report.num_checked == report.num_proof_clauses

    def test_php(self):
        formula = pigeonhole(4)
        assert verify_proof_v1(formula, proof_of(formula)).ok

    def test_counting_engine(self, tiny_unsat):
        report = verify_proof_v1(tiny_unsat, proof_of(tiny_unsat),
                                 engine_cls=CountingPropagator)
        assert report.ok

    def test_empty_ended_proof(self):
        formula = CnfFormula([[1], []])
        assert verify_proof_v1(formula, proof_of(formula)).ok

    def test_handwritten_rup_proof(self):
        # (1 2) (1 -2) (-1 2) (-1 -2): clause (1) is RUP, then the pair.
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1,), (-1,)], ENDING_FINAL_PAIR)
        assert verify_proof_v1(formula, proof).ok

    def test_tautological_proof_clause_accepted(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(3, -3), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        assert verify_proof_v1(formula, proof).ok

    def test_duplicated_proof_clause_accepted(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        proof = ConflictClauseProof([(1,), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        assert verify_proof_v1(formula, proof).ok


class TestRejectsBuggyProofs:
    def test_non_implied_clause_rejected(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        # (3) is over a free variable: falsifying it propagates nothing.
        proof = ConflictClauseProof([(3,), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        report = verify_proof_v1(formula, proof)
        assert not report.ok
        assert report.failed_clause_index == 0
        assert "conflict" in report.failure_reason

    def test_wrong_clause_rejected(self):
        formula = CnfFormula([[1, 2], [-1, 2]])  # SAT formula
        proof = ConflictClauseProof([(2,), (-2,)], ENDING_FINAL_PAIR)
        report = verify_proof_v1(formula, proof)
        assert not report.ok

    def test_dropped_clause_detected(self, tiny_unsat):
        proof = proof_of(tiny_unsat)
        if len(proof) < 3:
            pytest.skip("proof too short to drop from")
        clauses = proof.clauses[1:]  # drop the first deduced clause
        try:
            corrupted = ConflictClauseProof(clauses, proof.ending)
        except Exception:
            pytest.skip("structure broke instead")
        report = verify_proof_v1(tiny_unsat, corrupted)
        # Either rejected, or still fine (the dropped clause may have
        # been redundant) — but it must never crash.
        assert report.outcome in ("proof_is_correct",
                                  "proof_is_not_correct")

    @pytest.mark.parametrize("seed", range(6))
    def test_flipped_literal_never_crashes_often_rejected(self, seed):
        rng = random.Random(2000 + seed)
        formula = random_formula(rng, 8, 35)
        result = solve(formula)
        if not result.is_unsat:
            pytest.skip("SAT draw")
        proof = ConflictClauseProof.from_log(result.log)
        clauses = [list(c) for c in proof.clauses]
        # Flip a literal in a mid-proof clause.
        target = None
        for index in range(len(clauses) - 2):
            if clauses[index]:
                target = index
        if target is None:
            pytest.skip("no clause to corrupt")
        clauses[target][0] = -clauses[target][0]
        corrupted = ConflictClauseProof(
            [tuple(c) for c in clauses], proof.ending)
        report = verify_proof_v1(formula, corrupted)
        assert report.outcome in ("proof_is_correct",
                                  "proof_is_not_correct")

    def test_truncated_proof_rejected(self):
        # Remove everything but a final pair that is not BCP-derivable.
        formula = pigeonhole(3)
        proof = proof_of(formula)
        pair = proof.final_pair()
        truncated = ConflictClauseProof(list(pair), ENDING_FINAL_PAIR)
        report = verify_proof_v1(formula, truncated)
        assert not report.ok

    def test_strengthened_clause_rejected(self):
        """A buggy solver that drops literals from learned clauses."""
        formula = pigeonhole(3)
        proof = proof_of(formula)
        clauses = [list(c) for c in proof.clauses]
        victim = max(range(len(clauses)), key=lambda i: len(clauses[i]))
        if len(clauses[victim]) < 2:
            pytest.skip("no wide clause")
        del clauses[victim][0]
        corrupted = ConflictClauseProof([tuple(c) for c in clauses],
                                        proof.ending)
        report = verify_proof_v1(formula, corrupted)
        assert report.outcome in ("proof_is_correct",
                                  "proof_is_not_correct")

    def test_satisfiable_formula_bogus_empty_proof(self):
        formula = CnfFormula([[1, 2]])
        proof = ConflictClauseProof([()], ENDING_EMPTY)
        report = verify_proof_v1(formula, proof)
        assert not report.ok


class TestReportFields:
    def test_timing_recorded(self, tiny_unsat):
        report = verify_proof_v1(tiny_unsat, proof_of(tiny_unsat))
        assert report.verification_time >= 0
        assert report.procedure == "verification1"

    def test_tested_fraction_is_one(self, tiny_unsat):
        report = verify_proof_v1(tiny_unsat, proof_of(tiny_unsat))
        assert report.tested_fraction == 1.0
        assert report.num_skipped == 0

    def test_verify_proof_dispatch(self, tiny_unsat):
        proof = proof_of(tiny_unsat)
        assert verify_proof(tiny_unsat, proof,
                            procedure="verification1").ok
        with pytest.raises(ValueError):
            verify_proof(tiny_unsat, proof, procedure="verification3")


class TestCheckOrder:
    """Paper §3: when every clause is checked, order does not matter."""

    def test_forward_accepts_correct_proof(self, tiny_unsat):
        proof = proof_of(tiny_unsat)
        assert verify_proof_v1(tiny_unsat, proof, order="forward").ok

    def test_orders_agree_on_random_formulas(self):
        rng = random.Random(321)
        agreements = 0
        for _ in range(25):
            formula = random_formula(rng, 8, 35)
            result = solve(formula)
            if not result.is_unsat:
                continue
            proof = ConflictClauseProof.from_log(result.log)
            backward = verify_proof_v1(formula, proof)
            forward = verify_proof_v1(formula, proof, order="forward")
            assert backward.ok == forward.ok
            agreements += 1
        assert agreements > 3

    def test_orders_agree_on_rejection(self):
        formula = CnfFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        bogus = ConflictClauseProof([(3,), (1,), (-1,)],
                                    ENDING_FINAL_PAIR)
        backward = verify_proof_v1(formula, bogus)
        forward = verify_proof_v1(formula, bogus, order="forward")
        assert not backward.ok and not forward.ok
        # Both point at the same bogus clause here (it is the only one).
        assert backward.failed_clause_index == 0
        assert forward.failed_clause_index == 0

    def test_unknown_order_rejected(self, tiny_unsat):
        with pytest.raises(ValueError):
            verify_proof_v1(tiny_unsat, proof_of(tiny_unsat),
                            order="shuffled")
