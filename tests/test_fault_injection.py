"""End-to-end fault-injection sweep (:mod:`repro.testing.faults`).

Each scenario drives the real CLI in a subprocess (or the in-process
pool hooks, for worker death) and asserts the typed exit-code
contract: faults surface as one-line diagnostics and partial reports,
never tracebacks — and interrupted runs leave a resume token that
reaches the uninterrupted verdict.  The sweep runs once per module;
each test reports one scenario, so a regression names its fault.
"""

import sys

import pytest

from repro.testing.faults import SCENARIOS, main, run_suite

pytestmark = pytest.mark.skipif(
    sys.platform.startswith("win"),
    reason="signal-delivery scenarios need POSIX semantics")


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("faults")
    outcomes = run_suite(workdir=str(workdir))
    return {outcome.scenario: outcome for outcome in outcomes}


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_scenario(sweep, name):
    outcome = sweep[name]
    assert outcome.passed, outcome.line()


def test_sweep_covers_the_exit_code_surface(sweep):
    # Budget scenarios end on the *resume* leg (exit 0), so exit 3 is
    # covered by their details rather than the final expected code.
    codes = {code for outcome in sweep.values()
             for code in outcome.expected_exit}
    assert {0, 1, 2, 65, 130} <= codes
    assert any("exit 3" in sweep[name].detail
               for name in ("live-clause-budget", "props-budget"))


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_suite(["no-such-fault"])


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
